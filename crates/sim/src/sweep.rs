//! Parameter sweeps: the experiment shapes the paper's figures are built
//! from (configurations × load latencies, configurations × miss penalties,
//! benchmarks × configurations).
//!
//! Compilation is shared across hardware configurations — the compiled
//! program depends only on the load latency, so each (benchmark, latency)
//! pair is compiled once and replayed under every configuration, exactly
//! as the paper replays each binary.

use crate::compile_cache::CompileCache;
use crate::config::{HwConfig, ProcessorKind, SimConfig};
use crate::driver::{run_compiled, run_tape, run_tape_fused, RunResult, SimError};
use crate::pool::JobPool;
use crate::store::{program_fingerprint, result_fingerprint, ArtifactStore};
use crate::tape_cache::TapeCache;
use nbl_core::tag_array::ReplacementKind;
use nbl_sched::compile::compile;
use nbl_trace::ir::Program;
use nbl_trace::tape::TraceTape;
use std::sync::{Arc, OnceLock};

/// MCPI-vs-load-latency curves for one benchmark (the shape of Figs. 5,
/// 9–12, 15–17).
#[derive(Debug, Clone)]
pub struct LatencySweep {
    /// Benchmark name.
    pub benchmark: String,
    /// Configuration labels, in input order (one curve each).
    pub configs: Vec<String>,
    /// Latencies swept (the x axis).
    pub latencies: Vec<u32>,
    /// `rows[i][j]` = result at `latencies[i]` under `configs[j]`.
    pub rows: Vec<Vec<RunResult>>,
}

impl LatencySweep {
    /// The MCPI curve (over latency) of configuration index `j`.
    pub fn curve(&self, j: usize) -> Vec<f64> {
        self.rows.iter().map(|r| r[j].mcpi).collect()
    }

    /// Result lookup by configuration label and latency.
    pub fn at(&self, config: &str, latency: u32) -> Option<&RunResult> {
        let j = self.configs.iter().position(|c| c == config)?;
        let i = self.latencies.iter().position(|&l| l == latency)?;
        Some(&self.rows[i][j])
    }
}

/// Sweeps `configs` × `latencies` for one benchmark program.
///
/// # Errors
///
/// [`SimError`] from the compiler model or the engine.
pub fn latency_sweep(
    program: &Program,
    base: &SimConfig,
    configs: &[HwConfig],
    latencies: &[u32],
) -> Result<LatencySweep, SimError> {
    let mut rows = Vec::with_capacity(latencies.len());
    for &lat in latencies {
        let compiled = compile(program, lat)?;
        let mut row = Vec::with_capacity(configs.len());
        for hw in configs {
            let cfg = SimConfig {
                hw: hw.clone(),
                ..base.clone()
            }
            .at_latency(lat);
            row.push(run_compiled(&program.name, &compiled, &cfg)?);
        }
        rows.push(row);
    }
    Ok(LatencySweep {
        benchmark: program.name.clone(),
        configs: configs.iter().map(HwConfig::label).collect(),
        latencies: latencies.to_vec(),
        rows,
    })
}

/// MCPI-vs-miss-penalty table for one benchmark at a fixed latency
/// (Fig. 18's shape).
#[derive(Debug, Clone)]
pub struct PenaltySweep {
    /// Benchmark name.
    pub benchmark: String,
    /// Configuration labels.
    pub configs: Vec<String>,
    /// Penalties swept.
    pub penalties: Vec<u32>,
    /// `rows[i][j]` = result at `penalties[i]` under `configs[j]`.
    pub rows: Vec<Vec<RunResult>>,
}

impl PenaltySweep {
    /// Result lookup by configuration label and penalty.
    pub fn at(&self, config: &str, penalty: u32) -> Option<&RunResult> {
        let j = self.configs.iter().position(|c| c == config)?;
        let i = self.penalties.iter().position(|&p| p == penalty)?;
        Some(&self.rows[i][j])
    }
}

/// Sweeps `configs` × `penalties` at the base config's load latency.
///
/// # Errors
///
/// [`SimError`] from the compiler model or the engine.
pub fn penalty_sweep(
    program: &Program,
    base: &SimConfig,
    configs: &[HwConfig],
    penalties: &[u32],
) -> Result<PenaltySweep, SimError> {
    let compiled = compile(program, base.load_latency)?;
    let mut rows = Vec::with_capacity(penalties.len());
    for &pen in penalties {
        let mut row = Vec::with_capacity(configs.len());
        for hw in configs {
            let cfg = SimConfig {
                hw: hw.clone(),
                ..base.clone()
            }
            .with_penalty(pen);
            row.push(run_compiled(&program.name, &compiled, &cfg)?);
        }
        rows.push(row);
    }
    Ok(PenaltySweep {
        benchmark: program.name.clone(),
        configs: configs.iter().map(HwConfig::label).collect(),
        penalties: penalties.to_vec(),
        rows,
    })
}

/// Replacement-policy sensitivity grid for one benchmark: policy × MSHR
/// configuration × load latency (the `figures replsens` exhibit).
#[derive(Debug, Clone)]
pub struct ReplacementSweep {
    /// Benchmark name.
    pub benchmark: String,
    /// Policy labels, in input order.
    pub policies: Vec<String>,
    /// Configuration labels.
    pub configs: Vec<String>,
    /// Latencies swept.
    pub latencies: Vec<u32>,
    /// `rows[p][i][j]` = result under `policies[p]` at `latencies[i]`
    /// under `configs[j]`.
    pub rows: Vec<Vec<Vec<RunResult>>>,
}

impl ReplacementSweep {
    /// Result lookup by policy label, configuration label and latency.
    pub fn at(&self, policy: &str, config: &str, latency: u32) -> Option<&RunResult> {
        let p = self.policies.iter().position(|x| x == policy)?;
        let j = self.configs.iter().position(|c| c == config)?;
        let i = self.latencies.iter().position(|&l| l == latency)?;
        Some(&self.rows[p][i][j])
    }
}

/// Processor-model sensitivity grid for one benchmark: model × MSHR
/// configuration × load latency (the `figures replaymodel` exhibit).
#[derive(Debug, Clone)]
pub struct ModelSweep {
    /// Benchmark name.
    pub benchmark: String,
    /// Processor-model labels, in input order.
    pub models: Vec<String>,
    /// Configuration labels.
    pub configs: Vec<String>,
    /// Latencies swept.
    pub latencies: Vec<u32>,
    /// `rows[m][i][j]` = result under `models[m]` at `latencies[i]`
    /// under `configs[j]`.
    pub rows: Vec<Vec<Vec<RunResult>>>,
}

impl ModelSweep {
    /// Result lookup by model label, configuration label and latency.
    pub fn at(&self, model: &str, config: &str, latency: u32) -> Option<&RunResult> {
        let m = self.models.iter().position(|x| x == model)?;
        let j = self.configs.iter().position(|c| c == config)?;
        let i = self.latencies.iter().position(|&l| l == latency)?;
        Some(&self.rows[m][i][j])
    }
}

/// One fusion-aware scheduling unit: configurations `lo..hi` of fused
/// row `row` (a `(program, latency)` pair). Produced by
/// [`plan_row_spans`]; each span replays its slice in one fused walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RowSpan {
    /// Flat row index (`program_index * latencies.len() + latency_index`).
    row: usize,
    /// First configuration index of the slice (inclusive).
    lo: usize,
    /// Last configuration index of the slice (exclusive).
    hi: usize,
}

/// Splits each fused row into contiguous configuration spans sized by the
/// row's barrier weight, so a multi-thread pool schedules comparable work
/// units instead of whole rows. A row whose share of the grid's total
/// work exceeds one target-unit is split into proportionally many spans
/// (capped at one configuration per span); light rows stay whole. Spans
/// are emitted row-major (`row` ascending, `lo` ascending) so callers can
/// stitch rows back by a single scan.
fn plan_row_spans(weights: &[u64], nc: usize, threads: usize) -> Vec<RowSpan> {
    debug_assert!(nc > 0, "spans need at least one configuration");
    let row_work = |w: u64| w.saturating_mul(nc as u64).max(1);
    let total: u64 = weights.iter().map(|&w| row_work(w)).sum();
    // Aim for ~4 units per worker (the chunked queue's oversubscription
    // factor) so claim-order balancing has slack without shrinking units
    // into per-cell jobs that would repay the fusion win.
    let target = (total / (threads as u64 * 4).max(1)).max(1);
    let mut spans = Vec::with_capacity(weights.len());
    for (row, &w) in weights.iter().enumerate() {
        let work = row_work(w);
        let parts = (work.div_ceil(target)).clamp(1, nc as u64) as usize;
        let (base_len, extra) = (nc / parts, nc % parts);
        let mut lo = 0;
        for p in 0..parts {
            let len = base_len + usize::from(p < extra);
            spans.push(RowSpan {
                row,
                lo,
                hi: lo + len,
            });
            lo += len;
        }
        debug_assert_eq!(lo, nc, "spans tile the row exactly");
    }
    spans
}

/// The longest-processing-time claim order for `spans`: unit indices
/// sorted by descending estimated work (row weight × slice width), ties
/// broken by input order (the sort is stable), so heavy units start
/// first and nothing heavy lands last on a drained pool.
fn span_claim_order(spans: &[RowSpan], weights: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&u| {
        let s = &spans[u];
        std::cmp::Reverse(weights[s.row].saturating_mul((s.hi - s.lo) as u64))
    });
    order
}

/// The parallel sweep engine: a [`JobPool`] plus an [`ArtifactStore`]
/// (the memory-tier [`CompileCache`] and [`TapeCache`], optionally
/// backed by the content-addressed disk tier).
///
/// Sweeps flatten their `(benchmark, latency, configuration)` grids into a
/// single pool invocation; each cell fetches its compiled program from the
/// compile cache (compiled exactly once per `(benchmark, latency)` pair)
/// and the recorded tape through the store's tiers (the dynamic stream is
/// materialized exactly once per pair — decoded from disk when a prior
/// process persisted it), then replays the tape under its own hardware
/// configuration — record once, replay at every grid point. With a disk
/// tier every cell's [`RunResult`] also writes through under its input
/// fingerprint; in incremental mode
/// ([`ArtifactStore::incremental`]) cells whose fingerprints are
/// unchanged are answered from those stored results without simulating.
/// The pool places results in input order, so the parallel sweeps return
/// [`RunResult`]s **identical** to the serial ones.
#[derive(Debug, Default)]
pub struct SweepEngine {
    pool: JobPool,
    store: ArtifactStore,
}

impl SweepEngine {
    /// An engine with `threads` workers and a fresh memory-only store.
    pub fn new(threads: usize) -> Self {
        Self {
            pool: JobPool::new(threads),
            store: ArtifactStore::in_memory(),
        }
    }

    /// An engine with `threads` workers running on an explicit store
    /// (the bench exhibit's disk-warm pass builds a fresh engine on a
    /// populated store to model a fresh process).
    pub fn with_store(threads: usize, store: ArtifactStore) -> Self {
        Self {
            pool: JobPool::new(threads),
            store,
        }
    }

    /// The process-wide engine: default thread count (`NBL_THREADS` or the
    /// machine's parallelism) and a store wired from
    /// [`crate::store::store_settings`] (CLI flags or `NBL_STORE_DIR` /
    /// `NBL_INCREMENTAL`), shared across every sweep, so a whole bench
    /// invocation compiles and records each pair at most once.
    pub fn global() -> &'static SweepEngine {
        static GLOBAL: OnceLock<SweepEngine> = OnceLock::new();
        GLOBAL.get_or_init(|| Self {
            pool: JobPool::with_default_threads(),
            store: ArtifactStore::from_settings(),
        })
    }

    /// The engine's pool (e.g. for ad-hoc fan-out over benchmarks).
    pub fn pool(&self) -> &JobPool {
        &self.pool
    }

    /// The engine's artifact store.
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// The engine's compile cache (e.g. for counter reporting).
    pub fn cache(&self) -> &CompileCache {
        self.store.compile_cache()
    }

    /// The engine's tape cache (e.g. for counter reporting).
    pub fn tapes(&self) -> &TapeCache {
        self.store.tape_cache()
    }

    /// The result-artifact fingerprint of one cell, when the store has a
    /// disk tier to address into.
    fn cell_fingerprint(&self, program: &Program, cfg: &SimConfig) -> Option<u64> {
        self.store
            .disk()
            .map(|_| result_fingerprint(program_fingerprint(program), cfg))
    }

    /// One grid cell: answered from the stored result when incremental
    /// and unchanged, else compile (cached), record (tiered), replay —
    /// writing the fresh result through to the disk tier.
    fn run_cell(&self, program: &Program, cfg: &SimConfig) -> Result<RunResult, SimError> {
        let fp = self.cell_fingerprint(program, cfg);
        if self.store.incremental() {
            if let Some(fp) = fp {
                if let Some(stored) = self.store.load_result(&program.name, cfg.load_latency, fp) {
                    return Ok(stored);
                }
            }
        }
        let compiled = self.store.get_or_compile(program, cfg.load_latency)?;
        let tape = self.store.get_or_record(&compiled);
        let result = run_tape(&program.name, &tape, cfg)?;
        if let Some(fp) = fp {
            self.store.store_result(&result, fp);
        }
        Ok(result)
    }

    /// One fused row — every configuration of a `(program, latency)`
    /// pair in one tape walk. In incremental mode, cells whose stored
    /// results are present under their exact input fingerprints are
    /// answered from the store; only the missing configurations are
    /// simulated (still fused, and each configuration's replay is
    /// independent of its row neighbours, so the mix is bit-identical to
    /// an all-simulated row). Fresh results write through.
    fn run_row_fused(
        &self,
        program: &Program,
        program_fp: Option<u64>,
        latency: u32,
        cfgs: &[SimConfig],
    ) -> Result<Vec<RunResult>, SimError> {
        self.run_row_span(program, program_fp, latency, cfgs, &OnceLock::new())
    }

    /// One scheduling unit of a fused row: the contiguous configuration
    /// slice `cfgs` of a `(program, latency)` pair. When a row is split
    /// across units (fusion-aware scheduling under a multi-thread pool),
    /// all of its units share `tape_slot`, so the pair is still compiled
    /// and recorded **exactly once per sweep** — the first unit that
    /// needs the tape initializes the slot and the rest reuse the `Arc`
    /// without touching the caches; cache counters are identical to the
    /// one-job-per-row path.
    fn run_row_span(
        &self,
        program: &Program,
        program_fp: Option<u64>,
        latency: u32,
        cfgs: &[SimConfig],
        tape_slot: &OnceLock<Result<Arc<TraceTape>, SimError>>,
    ) -> Result<Vec<RunResult>, SimError> {
        let fps: Option<Vec<u64>> =
            program_fp.map(|pfp| cfgs.iter().map(|c| result_fingerprint(pfp, c)).collect());
        let mut row: Vec<Option<RunResult>> = vec![None; cfgs.len()];
        if self.store.incremental() {
            if let Some(fps) = &fps {
                for (slot, &fp) in row.iter_mut().zip(fps) {
                    *slot = self.store.load_result(&program.name, latency, fp);
                }
            }
        }
        if row.iter().any(Option::is_none) {
            let tape = tape_slot
                .get_or_init(|| {
                    let compiled = self.store.get_or_compile(program, latency)?;
                    Ok(self.store.get_or_record(&compiled))
                })
                .clone()?;
            let missing: Vec<usize> = (0..cfgs.len()).filter(|&j| row[j].is_none()).collect();
            let missing_cfgs: Vec<SimConfig> = missing.iter().map(|&j| cfgs[j].clone()).collect();
            let fresh = run_tape_fused(&program.name, &tape, &missing_cfgs)?;
            for (&j, result) in missing.iter().zip(fresh) {
                if let Some(fps) = &fps {
                    self.store.store_result(&result, fps[j]);
                }
                row[j] = Some(result);
            }
        }
        Ok(row.into_iter().flatten().collect())
    }

    /// The scheduling weight of one `(program, latency)` row: the
    /// recorded tape's barrier count when the tape is already resident
    /// (warm sweeps — the common bench shape), else the program's
    /// statically estimated dynamic instruction count. Both are
    /// proportional to replay work; mixing the two across rows only
    /// happens on partially warm caches, where any positive weight
    /// already beats uniform chunking.
    fn row_weight(&self, program: &Program, latency: u32) -> u64 {
        self.store
            .tape_cache()
            .peek_barriers(&program.name, latency)
            .unwrap_or_else(|| program.estimated_instructions())
    }

    /// Parallel [`latency_sweep`]: identical results, cells run on the
    /// pool, compilation via the engine's cache.
    ///
    /// # Errors
    ///
    /// [`SimError`] from the compiler model or the engine.
    pub fn latency_sweep(
        &self,
        program: &Program,
        base: &SimConfig,
        configs: &[HwConfig],
        latencies: &[u32],
    ) -> Result<LatencySweep, SimError> {
        let sweeps = self.grid_sweep(&[program], base, configs, latencies)?;
        Ok(sweeps
            .into_iter()
            .next()
            .expect("one program in, one sweep out"))
    }

    /// Cross-benchmark sweep, fused: every `(program, latency)` pair of
    /// the grid walks the shared tape **once**, advancing a simulator
    /// instance per hardware configuration in lockstep
    /// ([`run_tape_fused`]) — the row's configurations differ only in
    /// hardware, so they replay one recorded schedule. Results are
    /// bit-identical to the per-cell path ([`Self::grid_sweep_unfused`]),
    /// one [`LatencySweep`] per program in input order.
    ///
    /// Scheduling is fusion-aware: under a multi-thread pool, rows are
    /// split into configuration spans sized by each row's barrier weight
    /// (`plan_row_spans`) and claimed longest-first, so the ~8× coarser
    /// fused jobs load-balance like the unfused per-cell grid instead of
    /// regressing on it. Units of one row share the compiled program and
    /// tape through a per-row slot (`run_row_span`); a single-thread
    /// pool keeps the one-job-per-row shape.
    ///
    /// # Errors
    ///
    /// [`SimError`] from the compiler model or the engine.
    pub fn grid_sweep(
        &self,
        programs: &[&Program],
        base: &SimConfig,
        configs: &[HwConfig],
        latencies: &[u32],
    ) -> Result<Vec<LatencySweep>, SimError> {
        let (nl, nc) = (latencies.len(), configs.len());
        let nrows = programs.len() * nl;
        // One stable IR fingerprint per program, shared by every row job
        // (only needed when a disk tier exists to address results into).
        let program_fps: Vec<Option<u64>> = programs
            .iter()
            .map(|p| self.store.disk().map(|_| program_fingerprint(p)))
            .collect();
        let span_cfgs = |row: usize, lo: usize, hi: usize| -> Vec<SimConfig> {
            configs[lo..hi]
                .iter()
                .map(|hw| {
                    SimConfig {
                        hw: hw.clone(),
                        ..base.clone()
                    }
                    .at_latency(latencies[row % nl])
                })
                .collect()
        };
        let rows: Vec<Result<Vec<RunResult>, SimError>> =
            if self.pool.threads() <= 1 || nrows <= 1 || nc == 0 {
                self.pool
                    .try_run(nrows, |idx| -> Result<Vec<RunResult>, SimError> {
                        self.run_row_fused(
                            programs[idx / nl],
                            program_fps[idx / nl],
                            latencies[idx % nl],
                            &span_cfgs(idx, 0, nc),
                        )
                    })?
            } else {
                let weights: Vec<u64> = (0..nrows)
                    .map(|row| self.row_weight(programs[row / nl], latencies[row % nl]))
                    .collect();
                let spans = plan_row_spans(&weights, nc, self.pool.threads());
                let order = span_claim_order(&spans, &weights);
                let tape_slots: Vec<OnceLock<Result<Arc<TraceTape>, SimError>>> =
                    (0..nrows).map(|_| OnceLock::new()).collect();
                let parts = self.pool.try_run_order(
                    spans.len(),
                    &order,
                    |u| -> Result<Vec<RunResult>, SimError> {
                        let RowSpan { row, lo, hi } = spans[u];
                        self.run_row_span(
                            programs[row / nl],
                            program_fps[row / nl],
                            latencies[row % nl],
                            &span_cfgs(row, lo, hi),
                            &tape_slots[row],
                        )
                    },
                )?;
                // Stitch spans back into whole rows: spans are row-major,
                // so appending in span order rebuilds each row's
                // configuration order. A row keeps its first (lowest-`lo`)
                // error, matching the whole-row path's report.
                let mut rows: Vec<Result<Vec<RunResult>, SimError>> =
                    (0..nrows).map(|_| Ok(Vec::with_capacity(nc))).collect();
                for (span, part) in spans.iter().zip(parts) {
                    match (&mut rows[span.row], part) {
                        (Ok(row), Ok(mut slice)) => row.append(&mut slice),
                        (slot @ Ok(_), Err(e)) => *slot = Err(e),
                        (Err(_), _) => {}
                    }
                }
                rows
            };
        let mut iter = rows.into_iter();
        programs
            .iter()
            .map(|program| {
                let mut rows = Vec::with_capacity(nl);
                for _ in 0..nl {
                    rows.push(iter.next().expect("one row per (program, latency)")?);
                }
                Ok(LatencySweep {
                    benchmark: program.name.clone(),
                    configs: configs.iter().map(HwConfig::label).collect(),
                    latencies: latencies.to_vec(),
                    rows,
                })
            })
            .collect()
    }

    /// [`Self::grid_sweep`] without tape fusion: every
    /// `(program, latency, config)` cell replays the tape independently as
    /// its own pool job. The reference path the bench exhibit's
    /// fused-vs-unfused bit-identity check compares against.
    ///
    /// # Errors
    ///
    /// [`SimError`] from the compiler model or the engine.
    pub fn grid_sweep_unfused(
        &self,
        programs: &[&Program],
        base: &SimConfig,
        configs: &[HwConfig],
        latencies: &[u32],
    ) -> Result<Vec<LatencySweep>, SimError> {
        let (nl, nc) = (latencies.len(), configs.len());
        let cells = self.pool.try_run(
            programs.len() * nl * nc,
            |idx| -> Result<RunResult, SimError> {
                let program = programs[idx / (nl * nc)];
                let lat = latencies[(idx / nc) % nl];
                let cfg = SimConfig {
                    hw: configs[idx % nc].clone(),
                    ..base.clone()
                }
                .at_latency(lat);
                self.run_cell(program, &cfg)
            },
        )?;
        let mut iter = cells.into_iter();
        programs
            .iter()
            .map(|program| {
                let mut rows = Vec::with_capacity(nl);
                for _ in 0..nl {
                    rows.push(iter.by_ref().take(nc).collect::<Result<Vec<_>, _>>()?);
                }
                Ok(LatencySweep {
                    benchmark: program.name.clone(),
                    configs: configs.iter().map(HwConfig::label).collect(),
                    latencies: latencies.to_vec(),
                    rows,
                })
            })
            .collect()
    }

    /// Parallel [`penalty_sweep`]: identical results, cells run on the
    /// pool, the single compilation via the engine's cache.
    ///
    /// # Errors
    ///
    /// [`SimError`] from the compiler model or the engine.
    pub fn penalty_sweep(
        &self,
        program: &Program,
        base: &SimConfig,
        configs: &[HwConfig],
        penalties: &[u32],
    ) -> Result<PenaltySweep, SimError> {
        let compiled = self.store.get_or_compile(program, base.load_latency)?;
        let tape = self.store.get_or_record(&compiled);
        // One fused job per penalty: the row's configurations share the
        // tape (compiled for the base latency), so each row is a single
        // lockstep walk.
        let rows =
            self.pool
                .try_run(penalties.len(), |idx| -> Result<Vec<RunResult>, SimError> {
                    let cfgs: Vec<SimConfig> = configs
                        .iter()
                        .map(|hw| {
                            SimConfig {
                                hw: hw.clone(),
                                ..base.clone()
                            }
                            .with_penalty(penalties[idx])
                        })
                        .collect();
                    Ok(run_tape_fused(&program.name, &tape, &cfgs)?)
                })?;
        let rows = rows.into_iter().collect::<Result<Vec<_>, _>>()?;
        Ok(PenaltySweep {
            benchmark: program.name.clone(),
            configs: configs.iter().map(HwConfig::label).collect(),
            penalties: penalties.to_vec(),
            rows,
        })
    }

    /// Policy × configuration × latency grid for one benchmark, as one
    /// flat pool invocation. The compiled program depends only on the
    /// latency, so every policy and configuration replays the same
    /// binaries; results are input-ordered and fully deterministic
    /// (the random policy reseeds per run from its fixed seed).
    ///
    /// # Errors
    ///
    /// [`SimError`] from the compiler model or the engine.
    pub fn replacement_sweep(
        &self,
        program: &Program,
        base: &SimConfig,
        policies: &[ReplacementKind],
        configs: &[HwConfig],
        latencies: &[u32],
    ) -> Result<ReplacementSweep, SimError> {
        let (nl, nc) = (latencies.len(), configs.len());
        let cells = self.pool.try_run(
            policies.len() * nl * nc,
            |idx| -> Result<RunResult, SimError> {
                let policy = policies[idx / (nl * nc)];
                let lat = latencies[(idx / nc) % nl];
                let cfg = SimConfig {
                    hw: configs[idx % nc].clone(),
                    ..base.clone()
                }
                .at_latency(lat)
                .with_replacement(policy);
                self.run_cell(program, &cfg)
            },
        )?;
        let mut iter = cells.into_iter();
        let mut rows = Vec::with_capacity(policies.len());
        for _ in policies {
            let mut per_latency = Vec::with_capacity(nl);
            for _ in 0..nl {
                per_latency.push(iter.by_ref().take(nc).collect::<Result<Vec<_>, _>>()?);
            }
            rows.push(per_latency);
        }
        Ok(ReplacementSweep {
            benchmark: program.name.clone(),
            policies: policies.iter().map(ReplacementKind::label).collect(),
            configs: configs.iter().map(HwConfig::label).collect(),
            latencies: latencies.to_vec(),
            rows,
        })
    }

    /// Model × configuration × latency grid for one benchmark, as one
    /// flat pool invocation. Every model replays the same recorded tape
    /// (the compiled program depends only on the latency), so the grid
    /// isolates the pipeline's reaction — stall on first use vs. replay
    /// with cause attribution — from the code and the reference stream.
    ///
    /// # Errors
    ///
    /// [`SimError`] from the compiler model or the engine.
    pub fn model_sweep(
        &self,
        program: &Program,
        base: &SimConfig,
        models: &[ProcessorKind],
        configs: &[HwConfig],
        latencies: &[u32],
    ) -> Result<ModelSweep, SimError> {
        let (nl, nc) = (latencies.len(), configs.len());
        let cells = self.pool.try_run(
            models.len() * nl * nc,
            |idx| -> Result<RunResult, SimError> {
                let model = models[idx / (nl * nc)];
                let lat = latencies[(idx / nc) % nl];
                let cfg = SimConfig {
                    hw: configs[idx % nc].clone(),
                    ..base.clone()
                }
                .at_latency(lat)
                .with_processor(model);
                self.run_cell(program, &cfg)
            },
        )?;
        let mut iter = cells.into_iter();
        let mut rows = Vec::with_capacity(models.len());
        for _ in models {
            let mut per_latency = Vec::with_capacity(nl);
            for _ in 0..nl {
                per_latency.push(iter.by_ref().take(nc).collect::<Result<Vec<_>, _>>()?);
            }
            rows.push(per_latency);
        }
        Ok(ModelSweep {
            benchmark: program.name.clone(),
            models: models.iter().map(|m| m.label().to_string()).collect(),
            configs: configs.iter().map(HwConfig::label).collect(),
            latencies: latencies.to_vec(),
            rows,
        })
    }

    /// Runs many independent `(program, config)` jobs on the pool, results
    /// in input order, compilation cached. The workhorse for experiment
    /// tables that aren't latency sweeps (per-benchmark rows, ablations).
    ///
    /// # Errors
    ///
    /// [`SimError`] from the compiler model or the engine.
    pub fn run_many(&self, jobs: &[(&Program, SimConfig)]) -> Result<Vec<RunResult>, SimError> {
        self.pool
            .try_run(jobs.len(), |i| -> Result<RunResult, SimError> {
                let (program, cfg) = &jobs[i];
                self.run_cell(program, cfg)
            })?
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbl_trace::workloads::{build, Scale};

    #[test]
    fn row_spans_tile_rows_and_split_by_weight() {
        // Row 1 carries ~8× the work of the others: it must split into
        // more spans, every row must be tiled exactly, and spans must be
        // emitted row-major.
        let weights = [100, 800, 100, 100];
        let nc = 8;
        let spans = plan_row_spans(&weights, nc, 4);
        let mut next_row = 0;
        let mut cursor = 0;
        let mut per_row = [0usize; 4];
        for s in &spans {
            if s.row != next_row {
                assert_eq!(cursor, nc, "row {next_row} tiled exactly");
                assert_eq!(s.row, next_row + 1, "row-major emission");
                next_row = s.row;
                cursor = 0;
            }
            assert_eq!(s.lo, cursor, "contiguous spans");
            assert!(s.hi > s.lo && s.hi <= nc);
            cursor = s.hi;
            per_row[s.row] += 1;
        }
        assert_eq!(cursor, nc, "last row tiled exactly");
        assert!(
            per_row[1] > per_row[0],
            "heavy row splits finer: {per_row:?}"
        );
        assert!(per_row[1] <= nc, "never below one configuration per span");
        // Claim order starts with a slice of the heavy row.
        let order = span_claim_order(&spans, &weights);
        assert_eq!(spans[order[0]].row, 1, "heaviest unit claimed first");
        // Degenerate shapes: uniform weights and single-thread targets
        // still tile.
        for threads in [1, 2, 16] {
            let spans = plan_row_spans(&[0, 0], 3, threads);
            let covered: usize = spans.iter().map(|s| s.hi - s.lo).sum();
            assert_eq!(covered, 6, "zero-weight rows still tile ({threads})");
        }
    }

    #[test]
    fn latency_sweep_shape_and_lookup() {
        let p = build("eqntott", Scale::quick()).unwrap();
        let base = SimConfig::baseline(HwConfig::Mc0);
        let configs = [HwConfig::Mc0, HwConfig::Mc(1), HwConfig::NoRestrict];
        let s = latency_sweep(&p, &base, &configs, &[1, 10]).unwrap();
        assert_eq!(s.rows.len(), 2);
        assert_eq!(s.rows[0].len(), 3);
        assert_eq!(s.curve(0).len(), 2);
        let r = s.at("mc=1", 10).unwrap();
        assert_eq!(r.config, "mc=1");
        assert_eq!(r.load_latency, 10);
        assert!(s.at("mc=7", 10).is_none());
        assert!(s.at("mc=1", 11).is_none());
    }

    #[test]
    fn parallel_sweeps_match_serial_exactly() {
        // The determinism contract: parallel execution returns RunResults
        // *equal* (full struct equality, every metric) to the serial path,
        // across ≥2 benchmarks × 2 latencies × 3 configs.
        let base = SimConfig::baseline(HwConfig::Mc0);
        let configs = [HwConfig::Mc(1), HwConfig::Fc(4), HwConfig::NoRestrict];
        let latencies = [2, 10];
        let engine = SweepEngine::new(4);
        for name in ["doduc", "eqntott"] {
            let p = build(name, Scale::quick()).unwrap();
            let serial = latency_sweep(&p, &base, &configs, &latencies).unwrap();
            let parallel = engine
                .latency_sweep(&p, &base, &configs, &latencies)
                .unwrap();
            assert_eq!(serial.configs, parallel.configs);
            assert_eq!(serial.latencies, parallel.latencies);
            assert_eq!(
                serial.rows, parallel.rows,
                "{name}: parallel must be bit-identical"
            );
        }
        // And the penalty sweep.
        let p = build("tomcatv", Scale::quick()).unwrap();
        let serial = penalty_sweep(&p, &base, &configs, &[8, 32]).unwrap();
        let parallel = engine.penalty_sweep(&p, &base, &configs, &[8, 32]).unwrap();
        assert_eq!(serial.rows, parallel.rows);
    }

    #[test]
    fn grid_sweep_shape_and_compile_sharing() {
        let engine = SweepEngine::new(3);
        let doduc = build("doduc", Scale::quick()).unwrap();
        let eqntott = build("eqntott", Scale::quick()).unwrap();
        let base = SimConfig::baseline(HwConfig::Mc0);
        let configs = [HwConfig::Mc0, HwConfig::Mc(1), HwConfig::NoRestrict];
        let latencies = [1, 10];
        let sweeps = engine
            .grid_sweep(&[&doduc, &eqntott], &base, &configs, &latencies)
            .unwrap();
        assert_eq!(sweeps.len(), 2);
        assert_eq!(sweeps[0].benchmark, "doduc");
        assert_eq!(sweeps[1].benchmark, "eqntott");
        for s in &sweeps {
            assert_eq!(s.rows.len(), 2);
            assert_eq!(s.rows[0].len(), 3);
            for (i, row) in s.rows.iter().enumerate() {
                for (j, r) in row.iter().enumerate() {
                    assert_eq!(r.benchmark, s.benchmark, "input-ordered placement");
                    assert_eq!(r.load_latency, latencies[i]);
                    assert_eq!(r.config, configs[j].label());
                }
            }
        }
        // 2 benchmarks × 2 latencies compiled; the fused sweep fetches
        // each compilation and tape exactly once per (benchmark, latency)
        // row — the 3 configurations inside a row share one walk.
        let stats = engine.cache().stats();
        assert_eq!(
            stats.compiles, 4,
            "each (benchmark, latency) pair compiles exactly once"
        );
        assert_eq!(stats.hits, 0, "fused rows fetch each compilation once");
        let tapes = engine.tapes().stats();
        assert_eq!(
            tapes.records, 4,
            "each (benchmark, latency) pair records exactly once"
        );
        assert_eq!(tapes.hits, 0, "fused rows fetch each tape once");
        assert_eq!(tapes.evictions, 0);
        engine
            .grid_sweep(&[&doduc, &eqntott], &base, &configs, &latencies)
            .unwrap();
        assert_eq!(
            engine.cache().stats().compiles,
            4,
            "re-sweep recompiles nothing"
        );
        assert_eq!(engine.cache().stats().hits, 4);
        assert_eq!(
            engine.tapes().stats().records,
            4,
            "re-sweep re-records nothing"
        );
        assert_eq!(engine.tapes().stats().hits, 4);
    }

    #[test]
    fn fused_grid_matches_unfused_bit_for_bit() {
        let engine = SweepEngine::new(3);
        let doduc = build("doduc", Scale::quick()).unwrap();
        let swm = build("swm256", Scale::quick()).unwrap();
        let base = SimConfig::baseline(HwConfig::Mc0);
        let configs = [
            HwConfig::Mc0,
            HwConfig::Mc(1),
            HwConfig::Fc(4),
            HwConfig::NoRestrict,
        ];
        let latencies = [1, 3];
        let fused = engine
            .grid_sweep(&[&doduc, &swm], &base, &configs, &latencies)
            .unwrap();
        let unfused = engine
            .grid_sweep_unfused(&[&doduc, &swm], &base, &configs, &latencies)
            .unwrap();
        for (f, u) in fused.iter().zip(&unfused) {
            assert_eq!(
                f.rows, u.rows,
                "{}: fusion must not change results",
                f.benchmark
            );
        }
    }

    #[test]
    fn run_many_matches_run_program() {
        use crate::driver::run_program;
        let engine = SweepEngine::new(2);
        let p = build("xlisp", Scale::quick()).unwrap();
        let jobs = [
            (&p, SimConfig::baseline(HwConfig::Mc0)),
            (&p, SimConfig::baseline(HwConfig::NoRestrict)),
        ];
        let out = engine.run_many(&jobs).unwrap();
        assert_eq!(out.len(), 2);
        for (job, got) in jobs.iter().zip(&out) {
            assert_eq!(*got, run_program(job.0, &job.1).unwrap());
        }
    }

    #[test]
    fn replacement_sweep_is_deterministic_and_lru_matches_default() {
        use nbl_core::geometry::CacheGeometry;
        let p = build("eqntott", Scale::quick()).unwrap();
        // Policies only differ on an associative geometry.
        let base = SimConfig::baseline(HwConfig::Mc0)
            .with_geometry(CacheGeometry::new(8 * 1024, 32, 4).unwrap());
        let policies = [
            ReplacementKind::Lru,
            ReplacementKind::random(),
            ReplacementKind::TreePlru,
        ];
        let configs = [HwConfig::Mc(1), HwConfig::NoRestrict];
        let latencies = [1, 10];
        let engine = SweepEngine::new(4);
        let a = engine
            .replacement_sweep(&p, &base, &policies, &configs, &latencies)
            .unwrap();
        let b = engine
            .replacement_sweep(&p, &base, &policies, &configs, &latencies)
            .unwrap();
        assert_eq!(a.rows, b.rows, "replay must be bit-identical (seeded)");
        assert_eq!(a.policies, vec!["lru", "random", "plru"]);
        // The LRU plane equals a plain (default-policy) run.
        let lru = a.at("lru", "mc=1", 10).unwrap();
        let plain = latency_sweep(&p, &base, &configs, &latencies).unwrap();
        let reference = plain.at("mc=1", 10).unwrap();
        assert_eq!(lru.cycles, reference.cycles);
        assert_eq!(lru.replacement, "lru");
        assert_eq!(a.at("plru", "mc=1", 10).unwrap().replacement, "plru");
        assert!(a.at("fifo", "mc=1", 10).is_none());
    }

    #[test]
    fn model_sweep_is_deterministic_and_single_matches_default() {
        let p = build("eqntott", Scale::quick()).unwrap();
        let base = SimConfig::baseline(HwConfig::Mc0);
        let models = [ProcessorKind::SingleInOrder, ProcessorKind::ReplayCause];
        let configs = [HwConfig::Mc(1), HwConfig::NoRestrict];
        let latencies = [1, 10];
        let engine = SweepEngine::new(4);
        let a = engine
            .model_sweep(&p, &base, &models, &configs, &latencies)
            .unwrap();
        let b = engine
            .model_sweep(&p, &base, &models, &configs, &latencies)
            .unwrap();
        assert_eq!(a.rows, b.rows, "replay must be bit-identical");
        assert_eq!(a.models, vec!["single", "replay"]);
        // The single plane equals a plain (default-model) run.
        let single = a.at("single", "mc=1", 10).unwrap();
        let plain = latency_sweep(&p, &base, &configs, &latencies).unwrap();
        assert_eq!(single.cycles, plain.at("mc=1", 10).unwrap().cycles);
        assert_eq!(single.model, "single");
        assert_eq!(single.replay.total_replays(), 0);
        // The replaying plane attributes stalls to causes; the parallel
        // grid cell equals a direct serial run of the same configuration.
        let replay = a.at("replay", "mc=1", 10).unwrap();
        assert_eq!(replay.model, "replay");
        assert!(replay.replay.total_replays() > 0, "mc=1 must NACK or miss");
        let cfg = SimConfig::baseline(HwConfig::Mc(1))
            .at_latency(10)
            .with_processor(ProcessorKind::ReplayCause);
        let serial = crate::driver::run_program(&p, &cfg).unwrap();
        assert_eq!(*replay, serial, "parallel must equal the serial path");
    }

    #[test]
    fn penalty_sweep_blocking_is_linear() {
        let p = build("tomcatv", Scale::quick()).unwrap();
        let base = SimConfig::baseline(HwConfig::Mc0);
        let s = penalty_sweep(&p, &base, &[HwConfig::Mc0], &[8, 16, 32]).unwrap();
        let m8 = s.at("mc=0", 8).unwrap().mcpi;
        let m16 = s.at("mc=0", 16).unwrap().mcpi;
        let m32 = s.at("mc=0", 32).unwrap().mcpi;
        // "The blocking organization's miss CPI is strictly a linear
        // function of the miss penalty."
        assert!((m16 / m8 - 2.0).abs() < 0.05, "{m8} {m16}");
        assert!((m32 / m16 - 2.0).abs() < 0.05, "{m16} {m32}");
    }
}
