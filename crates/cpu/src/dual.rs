//! The dual-issue, in-order processor used to validate the paper's §6
//! IPC-scaling rule (Fig. 19).
//!
//! Issue rules:
//!
//! * up to two instructions issue per cycle, strictly in order;
//! * at most one memory operation per cycle (single data-cache port — the
//!   paper's single-issue histograms rely on "only one load can be issued
//!   in a cycle", and we keep that port width here);
//! * with single-cycle latencies, the second slot may not read or rewrite
//!   the first slot's destination (no same-cycle RAW/WAW);
//! * the second slot must be free of pending-register hazards at issue
//!   time, otherwise it waits for the next cycle — the leader never waits
//!   for the follower.
//!
//! Run the same workload with `perfect_cache` to obtain the machine's
//! no-miss cycle count; `(cycles − perfect_cycles) / instructions` is the
//! dual-issue MCPI, and `instructions / perfect_cycles` is the average IPC
//! used by the paper's scaling rule.

use crate::core_engine::{EngineConfig, EngineError};
use crate::issue::{IssueEngine, IssuePolicy};
use crate::stats::{CpuStats, InFlightSampler};
use nbl_core::cache::LockupFreeCache;
use nbl_core::inst::DynInst;
use nbl_core::types::Cycle;
use nbl_mem::system::MemorySystem;
use nbl_trace::tape::TraceTape;

/// The dual-issue processor. Feed instructions with
/// [`DualIssueProcessor::push`] and call [`DualIssueProcessor::finish`]
/// when the stream ends (it flushes the one-instruction pairing buffer).
#[derive(Debug, Clone)]
pub struct DualIssueProcessor {
    engine: IssueEngine,
}

impl DualIssueProcessor {
    /// Creates a processor at cycle zero with a cold cache.
    pub fn new(config: EngineConfig) -> DualIssueProcessor {
        DualIssueProcessor {
            engine: IssueEngine::new(config, IssuePolicy::DualInOrder),
        }
    }

    /// Feeds the next instruction of the in-order stream.
    ///
    /// # Errors
    ///
    /// [`EngineError`] if issuing the buffered leader hit a model
    /// invariant violation.
    pub fn push(&mut self, inst: DynInst) -> Result<(), EngineError> {
        self.engine.push(inst)
    }

    /// Runs an entire instruction stream (still call
    /// [`DualIssueProcessor::finish`] afterwards).
    ///
    /// # Errors
    ///
    /// The first [`EngineError`] any instruction hits.
    pub fn run<I>(&mut self, stream: I) -> Result<(), EngineError>
    where
        I: IntoIterator<Item = DynInst>,
    {
        self.engine.run(stream)
    }

    /// Replays a recorded tape with the exact pairing semantics of the
    /// [`DualIssueProcessor::push`] sequence, but indexing the tape's
    /// packed arrays directly: leader/follower conflict and port checks use
    /// the byte-compare forms ([`TraceTape::conflicts`],
    /// [`TraceTape::is_mem`]) and only a trailing unpaired entry is ever
    /// reconstructed as a [`DynInst`] (it lands in the pairing buffer for
    /// [`DualIssueProcessor::finish`], exactly as a pushed stream would).
    /// Produces bit-identical timing and stats to
    /// [`DualIssueProcessor::run`] on the equivalent stream.
    ///
    /// # Errors
    ///
    /// The first [`EngineError`] any entry hits.
    pub fn run_tape(&mut self, tape: &TraceTape) -> Result<(), EngineError> {
        self.engine.run_tape(tape)
    }

    /// Flushes the pairing buffer and finalizes the run.
    ///
    /// # Errors
    ///
    /// [`EngineError`] if issuing the last buffered instruction failed.
    pub fn finish(&mut self) -> Result<(), EngineError> {
        self.engine.finish()
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.engine.now()
    }

    /// Accumulated statistics.
    ///
    /// Note that for a multi-issue machine `stats().mcpi()` (stall cycles
    /// per instruction) undercounts the paper's memory CPI, because a miss
    /// also suppresses co-issue opportunities; use
    /// [`DualIssueProcessor::mcpi_against`] with a perfect-cache run.
    pub fn stats(&self) -> &CpuStats {
        self.engine.stats()
    }

    /// Number of cycles in which two instructions issued together.
    pub fn pairs_issued(&self) -> u64 {
        self.engine.pairs_issued()
    }

    /// Memory CPI relative to a perfect-cache cycle count of the same
    /// instruction stream: `(cycles − perfect_cycles) / instructions`.
    pub fn mcpi_against(&self, perfect_cycles: Cycle) -> f64 {
        self.engine.mcpi_against(perfect_cycles)
    }

    /// The in-flight occupancy sampler.
    pub fn sampler(&self) -> &InFlightSampler {
        self.engine.sampler()
    }

    /// The data cache.
    pub fn cache(&self) -> &LockupFreeCache {
        self.engine.cache()
    }

    /// The memory system behind the port.
    pub fn memory(&self) -> &MemorySystem {
        self.engine.memory()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbl_core::cache::CacheConfig;
    use nbl_core::mshr::inverted::InvertedConfig;
    use nbl_core::mshr::MshrConfig;
    use nbl_core::types::{Addr, LoadFormat, PhysReg};

    fn config(perfect: bool) -> EngineConfig {
        let mut c = EngineConfig::with_cache(CacheConfig::baseline(MshrConfig::Inverted(
            InvertedConfig::typical(),
        )));
        c.perfect_cache = perfect;
        c
    }

    fn independent_alus(n: usize) -> Vec<DynInst> {
        (0..n)
            .map(|i| DynInst::alu(PhysReg::int((i % 16) as u8), [Some(PhysReg::int(20)), None]))
            .collect()
    }

    #[test]
    fn independent_alus_dual_issue_at_ipc_2() {
        let mut p = DualIssueProcessor::new(config(true));
        p.run(independent_alus(17)).unwrap();
        p.finish().unwrap();
        // 16 registers rotate, neighbours never conflict: 8 pairs + 1 single.
        assert_eq!(p.now(), Cycle(9));
        assert_eq!(p.stats().instructions, 17);
        assert_eq!(p.pairs_issued(), 8);
    }

    #[test]
    fn dependent_chain_single_issues() {
        let mut p = DualIssueProcessor::new(config(true));
        let chain: Vec<_> = (0..10)
            .map(|i| {
                DynInst::alu(
                    PhysReg::int((i + 1) as u8),
                    [Some(PhysReg::int(i as u8)), None],
                )
            })
            .collect();
        p.run(chain).unwrap();
        p.finish().unwrap();
        assert_eq!(p.now(), Cycle(10));
        assert_eq!(p.pairs_issued(), 0);
    }

    #[test]
    fn only_one_memory_op_per_cycle() {
        let mut p = DualIssueProcessor::new(config(true));
        let loads: Vec<_> = (0..10)
            .map(|i| DynInst::load(Addr(i * 8), PhysReg::int(i as u8), LoadFormat::WORD))
            .collect();
        p.run(loads).unwrap();
        p.finish().unwrap();
        assert_eq!(p.now(), Cycle(10), "loads cannot pair with loads");
    }

    #[test]
    fn load_pairs_with_alu() {
        let mut p = DualIssueProcessor::new(config(true));
        for i in 0..10u64 {
            p.push(DynInst::load(
                Addr(i * 8),
                PhysReg::int(i as u8),
                LoadFormat::WORD,
            ))
            .unwrap();
            p.push(DynInst::alu(
                PhysReg::int(20),
                [Some(PhysReg::int(21)), None],
            ))
            .unwrap();
        }
        p.finish().unwrap();
        assert_eq!(p.now(), Cycle(10));
        assert_eq!(p.pairs_issued(), 10);
    }

    #[test]
    fn follower_with_pending_source_waits_a_cycle() {
        let mut p = DualIssueProcessor::new(config(false));
        // Leader load misses; follower uses its result: cannot co-issue and
        // then stalls as leader of the next cycle until the fill.
        p.push(DynInst::load(
            Addr(0x1000),
            PhysReg::int(1),
            LoadFormat::WORD,
        ))
        .unwrap();
        p.push(DynInst::alu(PhysReg::int(2), [Some(PhysReg::int(1)), None]))
            .unwrap();
        p.finish().unwrap();
        assert_eq!(p.pairs_issued(), 0);
        assert_eq!(p.stats().data_dep_stall_cycles, 15);
    }

    #[test]
    fn follower_structural_stall_blocks_the_pair() {
        use nbl_core::limit::Limit;
        use nbl_core::mshr::{RegisterFileConfig, TargetPolicy};
        // mc=1: a second miss cannot be tracked.
        let cfg = EngineConfig::with_cache(CacheConfig::baseline(MshrConfig::Register(
            RegisterFileConfig {
                entries: Limit::Finite(1),
                targets: TargetPolicy::explicit(Limit::Finite(1)),
                max_outstanding_misses: Limit::Finite(1),
                max_fetches_per_set: Limit::Unlimited,
            },
        )));
        let mut p = DualIssueProcessor::new(cfg);
        // Leader load misses; follower ALU pairs with it.
        p.push(DynInst::load(
            Addr(0x1000),
            PhysReg::int(1),
            LoadFormat::WORD,
        ))
        .unwrap();
        p.push(DynInst::alu(PhysReg::int(9), [None, None])).unwrap();
        // Next pair: a second load misses structurally and must wait for
        // the first fill before its fetch can start.
        p.push(DynInst::load(
            Addr(0x2000),
            PhysReg::int(2),
            LoadFormat::WORD,
        ))
        .unwrap();
        p.push(DynInst::alu(PhysReg::int(10), [None, None]))
            .unwrap();
        p.finish().unwrap();
        assert!(p.stats().structural_stall_cycles > 0);
        assert_eq!(p.stats().structural_stall_misses, 1);
        assert_eq!(p.stats().instructions, 4);
    }

    #[test]
    fn mem_mem_pairs_rejected_in_both_orders() {
        // The single memory port rejects a mem/mem pair whichever way
        // round it arrives: load-then-store and store-then-load both
        // single-issue, one memory op per cycle.
        for store_first in [false, true] {
            let mut p = DualIssueProcessor::new(config(true));
            for i in 0..5u64 {
                let load = DynInst::load(Addr(i * 8), PhysReg::int(i as u8), LoadFormat::WORD);
                let store = DynInst::store(Addr(0x4000 + i * 8), None);
                let (first, second) = if store_first {
                    (store, load)
                } else {
                    (load, store)
                };
                p.push(first).unwrap();
                p.push(second).unwrap();
            }
            p.finish().unwrap();
            assert_eq!(p.pairs_issued(), 0, "store_first={store_first}");
            assert_eq!(p.now(), Cycle(10), "store_first={store_first}");
            assert_eq!(p.stats().instructions, 10);
        }
    }

    #[test]
    fn pair_split_across_stream_boundaries_matches_one_stream() {
        // A leader buffered in the issue slot at the end of one `run`
        // call must still pair with the follower that arrives at the
        // start of the next — feeding the stream in arbitrary chunks is
        // invisible in the timing.
        let stream = independent_alus(12);
        let mut whole = DualIssueProcessor::new(config(true));
        whole.run(stream.clone()).unwrap();
        whole.finish().unwrap();
        for split in [1, 3, 5, 11] {
            let mut chunked = DualIssueProcessor::new(config(true));
            let (head, tail) = stream.split_at(split);
            chunked.run(head.to_vec()).unwrap();
            chunked.run(tail.to_vec()).unwrap();
            chunked.finish().unwrap();
            assert_eq!(chunked.now(), whole.now(), "split at {split}");
            assert_eq!(chunked.stats(), whole.stats());
            assert_eq!(chunked.pairs_issued(), whole.pairs_issued());
        }
    }

    #[test]
    fn odd_length_tail_single_issues_on_finish() {
        // Odd stream: the last instruction has no partner and is flushed
        // by `finish` as a lone leader.
        let mut even = DualIssueProcessor::new(config(true));
        even.run(independent_alus(8)).unwrap();
        even.finish().unwrap();
        assert_eq!(even.now(), Cycle(4));
        assert_eq!(even.pairs_issued(), 4);
        let mut odd = DualIssueProcessor::new(config(true));
        odd.run(independent_alus(9)).unwrap();
        odd.finish().unwrap();
        assert_eq!(odd.now(), Cycle(5), "the tail costs one extra cycle");
        assert_eq!(odd.pairs_issued(), 4);
        assert_eq!(odd.stats().instructions, 9);
    }

    #[test]
    fn run_then_finish_equals_push_sequence() {
        let stream: Vec<DynInst> = (0..9)
            .map(|i| DynInst::load(Addr(i * 8), PhysReg::int(i as u8), LoadFormat::WORD))
            .collect();
        let mut a = DualIssueProcessor::new(config(true));
        a.run(stream.clone()).unwrap();
        a.finish().unwrap();
        let mut b = DualIssueProcessor::new(config(true));
        for i in stream {
            b.push(i).unwrap();
        }
        b.finish().unwrap();
        assert_eq!(a.now(), b.now());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn tape_replay_matches_push_sequence() {
        // Mixed stream exercising every pairing outcome: co-issued
        // load+ALU, mem/mem port conflicts, RAW conflicts, and (for the
        // odd lengths) an unpaired tail flushed by `finish`.
        let stream: Vec<DynInst> = (0..30u64)
            .flat_map(|i| {
                [
                    DynInst::load(
                        Addr(i * 4096),
                        PhysReg::int((i % 8) as u8),
                        LoadFormat::WORD,
                    ),
                    DynInst::alu(
                        PhysReg::int(10 + (i % 4) as u8),
                        [Some(PhysReg::int((i % 8) as u8)), None],
                    ),
                    DynInst::store(Addr(i * 4096 + 8), Some(PhysReg::int(10 + (i % 4) as u8))),
                ]
            })
            .collect();
        for len in [0, 1, 2, stream.len() - 1, stream.len()] {
            let mut tape = TraceTape::with_capacity("t", 1, 0, len);
            for inst in &stream[..len] {
                tape.push(*inst);
            }
            for perfect in [true, false] {
                let mut pushed = DualIssueProcessor::new(config(perfect));
                pushed.run(stream[..len].iter().copied()).unwrap();
                pushed.finish().unwrap();
                let mut replayed = DualIssueProcessor::new(config(perfect));
                replayed.run_tape(&tape).unwrap();
                replayed.finish().unwrap();
                assert_eq!(replayed.now(), pushed.now(), "len {len} perfect {perfect}");
                assert_eq!(replayed.stats(), pushed.stats());
                assert_eq!(replayed.pairs_issued(), pushed.pairs_issued());
                assert_eq!(replayed.cache().counters(), pushed.cache().counters());
            }
        }
    }

    #[test]
    fn mcpi_against_perfect_run() {
        let stream = |n: u64| {
            (0..n).flat_map(move |i| {
                [
                    DynInst::load(
                        Addr(i * 4096),
                        PhysReg::int((i % 8) as u8),
                        LoadFormat::WORD,
                    ),
                    DynInst::alu(
                        PhysReg::int(10 + (i % 8) as u8),
                        [Some(PhysReg::int((i % 8) as u8)), None],
                    ),
                ]
            })
        };
        let mut perfect = DualIssueProcessor::new(config(true));
        perfect.run(stream(50)).unwrap();
        perfect.finish().unwrap();
        let mut real = DualIssueProcessor::new(config(false));
        real.run(stream(50)).unwrap();
        real.finish().unwrap();
        let mcpi = real.mcpi_against(perfect.now());
        assert!(mcpi > 0.0, "misses must cost something: {mcpi}");
        // Every pair misses and immediately uses the data: near-worst case.
        assert!(mcpi < 16.0);
    }
}
