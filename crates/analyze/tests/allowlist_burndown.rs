//! The burn-down contract for `scripts/analyze-allow.toml`: matched
//! entries suppress, stale entries surface, and the real repo's list is
//! pinned at zero entries — it can never grow.

use nbl_analyze::{allowlist, run_analysis, ALLOWLIST_PATH};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Snapshot: the initial debt (undocumented pub modules, hot-path panic
/// sites) was paid down in the PR that introduced the analyzer, so the
/// committed allowlist is empty. Adding an entry fails this test; new
/// findings must be fixed or suppressed inline with a reasoned
/// `// nbl-allow(<id>): why`.
#[test]
fn real_allowlist_is_pinned_at_zero_entries() {
    let text = std::fs::read_to_string(repo_root().join(ALLOWLIST_PATH))
        .expect("scripts/analyze-allow.toml exists");
    let parsed = allowlist::parse(&text, ALLOWLIST_PATH);
    assert!(parsed.findings.is_empty(), "{:#?}", parsed.findings);
    assert_eq!(
        parsed.entries.len(),
        0,
        "the allowlist only burns down — suppress new findings inline, with a reason"
    );
}

#[test]
fn matched_entries_suppress_and_stale_entries_surface() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/allow_tree");
    let a = run_analysis(&root).expect("fixture tree readable");
    assert_eq!(a.allowlist_entries, 2);
    // The carried doc-coverage finding is suppressed; the only surviving
    // finding is the stale entry itself, pointing at its own line.
    assert_eq!(a.findings.len(), 1, "{:#?}", a.findings);
    let stale = &a.findings[0];
    assert_eq!(stale.lint, "allowlist");
    assert_eq!(stale.file, ALLOWLIST_PATH);
    assert_eq!(stale.item, "long_gone");
    assert!(stale.message.contains("stale"), "{}", stale.message);
}

/// The real tree must be clean: `cargo test` enforces the same zero-
/// findings bar as `nbl-analyze --deny` in scripts/verify.sh.
#[test]
fn real_tree_has_no_findings() {
    let a = run_analysis(&repo_root()).expect("repo tree readable");
    let rendered: Vec<String> = a.findings.iter().map(|f| f.render()).collect();
    assert!(a.findings.is_empty(), "{}", rendered.join("\n"));
}
