//! Target-field layouts of a single MSHR.
//!
//! An MSHR tracks one outstanding fetch, but may record several waiting
//! loads ("targets"). How many, and for which addresses within the block,
//! depends on the field layout:
//!
//! * **Implicitly addressed** (paper Fig. 1): one positional field per
//!   sub-block of the line. A second miss to the *same* sub-block while the
//!   fetch is outstanding cannot be recorded — structural stall. In
//!   particular, two loads of the exact same address stall.
//! * **Explicitly addressed** (paper Fig. 2): `n` generic fields, each
//!   carrying its own address-in-block. Four fields can hold four misses to
//!   the *same* word, or four misses scattered anywhere in the block.
//! * **Hybrid** (paper Fig. 14): the line is divided into sub-blocks and
//!   each sub-block has `k` explicitly addressed fields.
//!
//! All three are expressed by [`TargetPolicy`], which normalizes to
//! (sub-block count × fields-per-sub-block). Implicit = (words × 1),
//! explicit = (1 × n).

use super::{Rejection, TargetRecord};
use crate::geometry::CacheGeometry;
use crate::limit::Limit;
use std::fmt;

/// How an MSHR's target fields are organized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TargetPolicy {
    /// Number of sub-blocks the line is divided into. 1 = fully explicit.
    sub_blocks: u32,
    /// Fields available per sub-block. `Unlimited` models the paper's
    /// idealized `fc=` curves ("for now we assume an infinite number of
    /// fields in the MSHR").
    fields_per_sub_block: Limit,
}

impl TargetPolicy {
    /// Implicitly addressed MSHR with one positional field per `word_bytes`
    /// of the line (paper Fig. 1). With 32-byte lines, `word_bytes = 8`
    /// gives the basic 4-field MSHR; `word_bytes = 4` the 8-field variant.
    ///
    /// The sub-block count is resolved against a concrete geometry by
    /// [`TargetStorage::new`]; here we record granularity via sub-blocks
    /// directly. Use [`TargetPolicy::implicit_sub_blocks`] when thinking in
    /// sub-block counts, as Fig. 14 does.
    pub fn implicit_sub_blocks(sub_blocks: u32) -> TargetPolicy {
        assert!(sub_blocks >= 1, "an MSHR needs at least one sub-block");
        TargetPolicy {
            sub_blocks,
            fields_per_sub_block: Limit::Finite(1),
        }
    }

    /// Explicitly addressed MSHR with `fields` generic fields (paper Fig. 2).
    pub fn explicit(fields: Limit) -> TargetPolicy {
        if let Limit::Finite(n) = fields {
            assert!(
                n >= 1,
                "an explicitly addressed MSHR needs at least one field"
            );
        }
        TargetPolicy {
            sub_blocks: 1,
            fields_per_sub_block: fields,
        }
    }

    /// Hybrid organization (paper Fig. 14): `sub_blocks` sub-blocks, each
    /// with `fields_per_sub_block` explicitly addressed fields.
    pub fn hybrid(sub_blocks: u32, fields_per_sub_block: u32) -> TargetPolicy {
        assert!(sub_blocks >= 1 && fields_per_sub_block >= 1);
        TargetPolicy {
            sub_blocks,
            fields_per_sub_block: Limit::Finite(fields_per_sub_block),
        }
    }

    /// Number of sub-blocks the line is divided into.
    #[inline]
    pub fn sub_blocks(&self) -> u32 {
        self.sub_blocks
    }

    /// Fields available per sub-block.
    #[inline]
    pub fn fields_per_sub_block(&self) -> Limit {
        self.fields_per_sub_block
    }

    /// Total fields across the MSHR, if finite.
    pub fn total_fields(&self) -> Limit {
        match self.fields_per_sub_block {
            Limit::Unlimited => Limit::Unlimited,
            Limit::Finite(k) => Limit::Finite(k * self.sub_blocks),
        }
    }

    /// `true` if this is a purely positional (implicitly addressed) layout.
    pub fn is_implicit(&self) -> bool {
        self.sub_blocks > 1 && self.fields_per_sub_block == Limit::Finite(1)
    }

    /// `true` if this is a purely explicit layout (one sub-block).
    pub fn is_explicit(&self) -> bool {
        self.sub_blocks == 1
    }
}

impl fmt::Display for TargetPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_explicit() {
            write!(f, "explicit({})", self.fields_per_sub_block)
        } else if self.is_implicit() {
            write!(f, "implicit({} sub-blocks)", self.sub_blocks)
        } else {
            write!(
                f,
                "hybrid({}x{})",
                self.sub_blocks, self.fields_per_sub_block
            )
        }
    }
}

impl Default for TargetPolicy {
    /// The idealized unlimited-field layout used by the paper's `fc=` and
    /// unrestricted curves.
    fn default() -> Self {
        TargetPolicy::explicit(Limit::Unlimited)
    }
}

/// The dynamic target-field state of one in-flight MSHR entry.
#[derive(Debug, Clone)]
pub struct TargetStorage {
    policy: TargetPolicy,
    /// Bytes covered by one sub-block, derived from the line size.
    sub_block_bytes: u32,
    /// Occupancy count per sub-block (length = `policy.sub_blocks`).
    /// Empty for single-sub-block (explicit) layouts, where the record
    /// count is the occupancy — explicit MSHRs are allocated on every
    /// primary miss, so they skip this buffer entirely.
    occupancy: Vec<u32>,
    /// The recorded targets, in arrival order.
    records: Vec<TargetRecord>,
}

impl TargetStorage {
    /// Creates empty target storage for one fetch of a line of
    /// `geometry.line_bytes()` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the policy has more sub-blocks than the line has bytes.
    pub fn new(policy: TargetPolicy, geometry: &CacheGeometry) -> TargetStorage {
        let line = geometry.line_bytes();
        assert!(
            policy.sub_blocks <= line,
            "policy wants {} sub-blocks but the line is only {} bytes",
            policy.sub_blocks,
            line
        );
        TargetStorage {
            policy,
            sub_block_bytes: line / policy.sub_blocks,
            occupancy: if policy.sub_blocks == 1 {
                Vec::new()
            } else {
                vec![0; policy.sub_blocks as usize]
            },
            records: Vec::new(),
        }
    }

    /// Which sub-block a byte offset falls into.
    #[inline]
    fn sub_block_of(&self, offset: u32) -> usize {
        (offset / self.sub_block_bytes) as usize
    }

    /// Attempts to record one more waiting load at byte `offset` within the
    /// block.
    ///
    /// # Errors
    ///
    /// Returns [`Rejection::TargetConflict`] if the responsible sub-block
    /// has no free field — the paper's structural-stall miss.
    pub fn try_add(&mut self, record: TargetRecord) -> Result<(), Rejection> {
        if self.policy.sub_blocks == 1 {
            // Explicit layout: every record shares the one sub-block.
            if !self
                .policy
                .fields_per_sub_block
                .allows_one_more(self.records.len())
            {
                return Err(Rejection::TargetConflict);
            }
            self.records.push(record);
            return Ok(());
        }
        let sb = self.sub_block_of(record.offset);
        debug_assert!(sb < self.occupancy.len(), "offset beyond line size");
        if !self
            .policy
            .fields_per_sub_block
            .allows_one_more(self.occupancy[sb] as usize)
        {
            return Err(Rejection::TargetConflict);
        }
        self.occupancy[sb] += 1;
        self.records.push(record);
        Ok(())
    }

    /// Number of waiting loads recorded.
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no loads are waiting.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drains all recorded targets (called on fill).
    pub fn drain(&mut self) -> Vec<TargetRecord> {
        for o in &mut self.occupancy {
            *o = 0;
        }
        std::mem::take(&mut self.records)
    }

    /// Discards all recorded targets, keeping the buffers' capacity (the
    /// recycling twin of [`TargetStorage::drain_into`] for resets where
    /// nobody wants the records).
    pub fn clear(&mut self) {
        for o in &mut self.occupancy {
            *o = 0;
        }
        self.records.clear();
    }

    /// Appends all recorded targets to `out` and resets the storage for
    /// reuse — unlike [`TargetStorage::drain`] the internal record buffer
    /// keeps its capacity, so a recycled storage records its next fetch's
    /// targets without allocating (the warm-replay fill path).
    pub fn drain_into(&mut self, out: &mut Vec<TargetRecord>) {
        for o in &mut self.occupancy {
            *o = 0;
        }
        out.append(&mut self.records);
    }

    /// The policy this storage was built with.
    #[inline]
    pub fn policy(&self) -> TargetPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Dest, LoadFormat, PhysReg};

    fn rec(offset: u32, reg: u8) -> TargetRecord {
        TargetRecord {
            dest: Dest::Reg(PhysReg::int(reg)),
            offset,
            format: LoadFormat::WORD,
        }
    }

    fn geom() -> CacheGeometry {
        CacheGeometry::baseline() // 32-byte lines
    }

    #[test]
    fn policy_constructors_normalize() {
        let imp = TargetPolicy::implicit_sub_blocks(4);
        assert!(imp.is_implicit());
        assert_eq!(imp.total_fields(), Limit::Finite(4));

        let exp = TargetPolicy::explicit(Limit::Finite(4));
        assert!(exp.is_explicit());
        assert_eq!(exp.total_fields(), Limit::Finite(4));

        let hyb = TargetPolicy::hybrid(2, 2);
        assert!(!hyb.is_implicit());
        assert!(!hyb.is_explicit());
        assert_eq!(hyb.total_fields(), Limit::Finite(4));

        assert_eq!(TargetPolicy::default().total_fields(), Limit::Unlimited);
    }

    #[test]
    fn implicit_stalls_on_second_miss_to_same_word() {
        // 4 sub-blocks of 8 bytes on a 32-byte line: the paper's basic MSHR.
        let mut st = TargetStorage::new(TargetPolicy::implicit_sub_blocks(4), &geom());
        st.try_add(rec(0, 1)).unwrap();
        // Different word: fine.
        st.try_add(rec(8, 2)).unwrap();
        // Same word as the first (offset 4 is in sub-block 0): structural stall.
        assert_eq!(st.try_add(rec(4, 3)), Err(Rejection::TargetConflict));
        // Exact same address also stalls (paper §2.2's second limitation).
        assert_eq!(st.try_add(rec(0, 4)), Err(Rejection::TargetConflict));
        assert_eq!(st.len(), 2);
    }

    #[test]
    fn implicit_fills_every_word_slot() {
        let mut st = TargetStorage::new(TargetPolicy::implicit_sub_blocks(4), &geom());
        for (i, off) in [0u32, 8, 16, 24].iter().enumerate() {
            st.try_add(rec(*off, i as u8)).unwrap();
        }
        assert_eq!(st.len(), 4);
        assert_eq!(st.try_add(rec(16, 9)), Err(Rejection::TargetConflict));
    }

    #[test]
    fn explicit_allows_repeated_addresses_up_to_field_count() {
        // The paper: an explicitly addressed MSHR with 4 fields "could handle
        // four misses to the exact same address without stalling".
        let mut st = TargetStorage::new(TargetPolicy::explicit(Limit::Finite(4)), &geom());
        for i in 0..4 {
            st.try_add(rec(12, i)).unwrap();
        }
        assert_eq!(st.try_add(rec(12, 5)), Err(Rejection::TargetConflict));
        assert_eq!(st.try_add(rec(0, 5)), Err(Rejection::TargetConflict));
    }

    #[test]
    fn unlimited_explicit_never_conflicts() {
        let mut st = TargetStorage::new(TargetPolicy::default(), &geom());
        for i in 0..100u32 {
            st.try_add(rec(i % 32, (i % 32) as u8)).unwrap();
        }
        assert_eq!(st.len(), 100);
    }

    #[test]
    fn hybrid_two_by_two() {
        // 2 sub-blocks of 16 bytes, 2 fields each (Fig. 14's hybrid point).
        let mut st = TargetStorage::new(TargetPolicy::hybrid(2, 2), &geom());
        st.try_add(rec(0, 0)).unwrap(); // sub-block 0
        st.try_add(rec(4, 1)).unwrap(); // sub-block 0 (second field)
        assert_eq!(st.try_add(rec(8, 2)), Err(Rejection::TargetConflict)); // sub-block 0 full
        st.try_add(rec(16, 3)).unwrap(); // sub-block 1
        st.try_add(rec(31, 4)).unwrap(); // sub-block 1
        assert_eq!(st.try_add(rec(20, 5)), Err(Rejection::TargetConflict));
        assert_eq!(st.len(), 4);
    }

    #[test]
    fn drain_returns_targets_in_arrival_order_and_resets() {
        let mut st = TargetStorage::new(TargetPolicy::explicit(Limit::Finite(2)), &geom());
        st.try_add(rec(0, 1)).unwrap();
        st.try_add(rec(8, 2)).unwrap();
        let drained = st.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].dest, Dest::Reg(PhysReg::int(1)));
        assert_eq!(drained[1].dest, Dest::Reg(PhysReg::int(2)));
        assert!(st.is_empty());
        // Fields are free again.
        st.try_add(rec(0, 3)).unwrap();
        st.try_add(rec(0, 4)).unwrap();
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            TargetPolicy::implicit_sub_blocks(8).to_string(),
            "implicit(8 sub-blocks)"
        );
        assert_eq!(
            TargetPolicy::explicit(Limit::Finite(4)).to_string(),
            "explicit(4)"
        );
        assert_eq!(TargetPolicy::hybrid(2, 2).to_string(), "hybrid(2x2)");
        assert_eq!(TargetPolicy::default().to_string(), "explicit(inf)");
    }

    #[test]
    #[should_panic(expected = "sub-blocks")]
    fn storage_rejects_policy_finer_than_bytes() {
        let _ = TargetStorage::new(TargetPolicy::implicit_sub_blocks(64), &geom());
    }
}
