//! `bench` exhibit: wall-clock timing of the record-once/replay-many
//! pipeline on a pinned grid sweep.
//!
//! Three timed phases over the same 18 benchmarks × 8 configurations × 6
//! latencies grid (the full Fig. 13 roster), all on one fresh
//! [`SweepEngine`] so this exhibit's counters are not mixed with other
//! exhibits':
//!
//! 1. **cold** — empty caches: every `(benchmark, latency)` pair is
//!    compiled and recorded to a tape, then all 864 cells replay;
//! 2. **warm** — the same sweep again with both caches hot: pure replay;
//! 3. **interpreted** — the same cells through
//!    [`run_compiled_interpreted`] (warm compile cache, no tapes): the
//!    pre-tape pipeline this PR's replay path is measured against.
//!
//! The exhibit asserts nothing but verifies and reports that all three
//! passes produce bit-identical [`RunResult`]s, and writes the
//! measurements to `BENCH_sweep.json` (path override: `NBL_BENCH_JSON`)
//! so speedups are tracked commit over commit.

use super::{programs_for, ExhibitError, RunScale, LATENCIES};
use nbl_sim::config::{HwConfig, SimConfig};
use nbl_sim::driver::{run_compiled_interpreted, RunResult};
use nbl_sim::pool::available_threads;
use nbl_sim::report;
use nbl_sim::sweep::SweepEngine;
use nbl_trace::ir::Program;
use nbl_trace::workloads::ALL;
use std::io::Write;
use std::time::Instant;

/// The Fig. 13-style grid: the seven baseline configurations plus the
/// in-cache MSHR organization.
fn grid_configs() -> Vec<HwConfig> {
    let mut configs = HwConfig::baseline_seven();
    configs.push(HwConfig::InCache);
    configs
}

/// Runs the full grid once through the engine's (cached, tape-replaying)
/// sweep path; returns wall seconds and the flat cell results.
fn sweep_pass(
    engine: &SweepEngine,
    programs: &[Program],
) -> Result<(f64, Vec<RunResult>), ExhibitError> {
    let refs: Vec<&Program> = programs.iter().collect();
    let base = SimConfig::baseline(HwConfig::NoRestrict);
    let t0 = Instant::now();
    let sweeps = engine
        .grid_sweep(&refs, &base, &grid_configs(), &LATENCIES)
        .map_err(|e| ExhibitError::new("bench grid sweep", e))?;
    let wall = t0.elapsed().as_secs_f64();
    let flat = sweeps
        .into_iter()
        .flat_map(|s| s.rows.into_iter().flatten())
        .collect();
    Ok((wall, flat))
}

/// Runs the same cells, in the same order, through the interpreter path
/// (compilations served from the engine's warm cache, no tapes).
fn interpreted_pass(
    engine: &SweepEngine,
    programs: &[Program],
) -> Result<(f64, Vec<RunResult>), ExhibitError> {
    let configs = grid_configs();
    let (nl, nc) = (LATENCIES.len(), configs.len());
    let base = SimConfig::baseline(HwConfig::NoRestrict);
    let t0 = Instant::now();
    let results = engine
        .pool()
        .try_run(
            programs.len() * nl * nc,
            |idx| -> Result<RunResult, String> {
                let program = &programs[idx / (nl * nc)];
                let cfg = SimConfig {
                    hw: configs[idx % nc].clone(),
                    ..base.clone()
                }
                .at_latency(LATENCIES[(idx / nc) % nl]);
                let compiled = engine
                    .cache()
                    .get_or_compile(program, cfg.load_latency)
                    .map_err(|e| format!("{}: {e}", program.name))?;
                run_compiled_interpreted(&program.name, &compiled, &cfg)
                    .map_err(|e| format!("{}: {e}", program.name))
            },
        )
        .map_err(|e| ExhibitError::new("bench interpreted pass", e))?
        .into_iter()
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| ExhibitError::new("bench interpreted pass", e))?;
    Ok((t0.elapsed().as_secs_f64(), results))
}

fn json_str_list(items: &[String]) -> String {
    let body: Vec<String> = items.iter().map(|s| format!("\"{s}\"")).collect();
    format!("[{}]", body.join(","))
}

/// Prints the timing table and writes `BENCH_sweep.json`.
///
/// Pinned to quick scale regardless of `--quick`: this exhibit measures
/// the harness rather than the workloads, and the JSON it emits is
/// compared commit over commit, so the grid must not change shape with
/// command-line flags.
pub fn run(out: &mut dyn Write, _scale: RunScale) -> Result<(), ExhibitError> {
    let programs = programs_for(&ALL, RunScale::Quick)?;
    let engine = SweepEngine::new(available_threads());
    let configs = grid_configs();
    let runs = ALL.len() * configs.len() * LATENCIES.len();
    let threads = engine.pool().threads();

    // Cold can only be timed once (the caches are warm afterwards); the
    // repeatable phases take the best of two passes to damp scheduler
    // noise, after checking every pass agrees bit-for-bit.
    let (cold_wall, cold) = sweep_pass(&engine, &programs)?;
    let (warm_wall_a, warm) = sweep_pass(&engine, &programs)?;
    let (warm_wall_b, warm_again) = sweep_pass(&engine, &programs)?;
    let warm_wall = warm_wall_a.min(warm_wall_b);
    let (interp_wall_a, interp) = interpreted_pass(&engine, &programs)?;
    let (interp_wall_b, interp_again) = interpreted_pass(&engine, &programs)?;
    let interp_wall = interp_wall_a.min(interp_wall_b);
    let bit_identical =
        cold == warm && warm == warm_again && warm == interp && interp == interp_again;
    let speedup_vs_interpreted = interp_wall / warm_wall;
    let speedup_vs_cold = cold_wall / warm_wall;
    let compile = engine.cache().stats();
    let tapes = engine.tapes().stats();

    let _ = writeln!(
        out,
        "== bench: record-once/replay-many pipeline timing (pinned quick scale) =="
    );
    let _ = writeln!(
        out,
        "{} cells: {} benchmarks x {} configs x {} latencies, {} worker thread{}",
        runs,
        ALL.len(),
        configs.len(),
        LATENCIES.len(),
        threads,
        if threads == 1 { "" } else { "s" }
    );
    let _ = writeln!(out, "{:>24} {:>9} {:>9}", "phase", "wall (s)", "runs/s");
    for (name, wall) in [
        ("cold (compile+record)", cold_wall),
        ("warm (tape replay)", warm_wall),
        ("interpreted (no tape)", interp_wall),
    ] {
        let _ = writeln!(
            out,
            "{:>24} {:>9.3} {:>9.1}",
            name,
            wall,
            runs as f64 / wall
        );
    }
    let _ = writeln!(
        out,
        "speedup: warm replay vs interpreted {speedup_vs_interpreted:.2}x, vs cold {speedup_vs_cold:.2}x"
    );
    let _ = writeln!(
        out,
        "caches: {} compiles + {} hits, {} tape records + {} replays ({:.2} MiB resident)",
        compile.compiles,
        compile.hits,
        tapes.records,
        tapes.hits,
        tapes.resident_bytes as f64 / (1024.0 * 1024.0)
    );
    let _ = writeln!(
        out,
        "results bit-identical across all three passes: {}",
        if bit_identical { "yes" } else { "NO" }
    );

    let latencies_json = format!("[{}]", LATENCIES.map(|l| l.to_string()).join(","));
    let json = format!(
        concat!(
            "{{\"kind\":\"bench_sweep\",\"scale\":\"quick\",",
            "\"benchmarks\":{},\"configs\":{},\"load_latencies\":{},",
            "\"runs\":{},\"threads\":{},",
            "\"cold_wall_s\":{:.6},\"warm_wall_s\":{:.6},\"interpreted_wall_s\":{:.6},",
            "\"warm_runs_per_sec\":{:.2},",
            "\"speedup_warm_vs_interpreted\":{:.3},\"speedup_warm_vs_cold\":{:.3},",
            "\"bit_identical\":{},\"caches\":{}}}\n"
        ),
        json_str_list(&ALL.map(String::from)),
        json_str_list(&configs.iter().map(HwConfig::label).collect::<Vec<_>>()),
        latencies_json,
        runs,
        threads,
        cold_wall,
        warm_wall,
        interp_wall,
        runs as f64 / warm_wall,
        speedup_vs_interpreted,
        speedup_vs_cold,
        bit_identical,
        report::caches_json(&compile, &tapes),
    );
    let path = std::env::var("NBL_BENCH_JSON").unwrap_or_else(|_| "BENCH_sweep.json".to_string());
    std::fs::write(&path, json).map_err(|e| ExhibitError::new(format!("writing {path}"), e))?;
    let _ = writeln!(out, "wrote {path}");
    let _ = writeln!(out);
    Ok(())
}
