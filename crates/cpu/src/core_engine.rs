//! The shared execution engine underlying both processor models.
//!
//! [`Core`] owns the issue clock, the register scoreboard and the stall
//! accounting, and drives all memory traffic through the narrow
//! [`MemorySystem`] port (which composes L1 + MSHRs, the optional L2, the
//! pipelined memory and the write buffer). The engine implements the event
//! mechanics the paper's model requires:
//!
//! * fills complete in issue order (the memory is a constant-latency pipe)
//!   and wake **all** waiting registers simultaneously (multi-write-port
//!   register file, §3.1);
//! * an instruction that reads (or rewrites) a pending register stalls
//!   until the fill that frees it — a *true data dependency* stall;
//! * a load miss rejected by the MSHRs stalls until the earliest
//!   outstanding fetch completes and then retries — a *structural* stall;
//! * under a blocking cache (or a write-allocate store miss) the whole
//!   miss penalty is exposed as a *blocking* stall.
//!
//! The single-issue [`crate::pipeline::Processor`] and the dual-issue
//! [`crate::dual::DualIssueProcessor`] are thin issue policies over this
//! engine.

use crate::scoreboard::Scoreboard;
use crate::stats::{CpuStats, InFlightSampler, ReplayAttribution, StallCause};
use nbl_core::cache::{CacheConfig, LockupFreeCache};
use nbl_core::geometry::DecodedAddr;
use nbl_core::inst::{DynInst, DynKind};
use nbl_core::mshr::MissKind;
use nbl_core::types::{Addr, Cycle, Dest, LoadFormat, PhysReg};
use nbl_mem::event::ReplayCause;
use nbl_mem::system::{
    FillEvent, FusedMemGroup, LoadResponse, MemSystemConfig, MemorySystem, ReplayLoadResponse,
    StoreResponse,
};
use nbl_mem::write_buffer::RetirePolicy;
use nbl_trace::tape::{barrier_index, barrier_is_mem, TapeKind, TraceTape};

/// Replay-bubble length for the *fast* causes (bank conflict, dcache
/// NACK): the load re-enters from the replay queue after a short
/// pipeline loop.
const REPLAY_FAST_CYCLES: u64 = 2;

/// Replay-bubble length for the *slow* causes (forwarding failure): the
/// load re-executes only after the blocking condition resolves.
const REPLAY_SLOW_CYCLES: u64 = 4;

/// Bubble length and [`CpuStats`] stall bucket for a replay cause: a
/// forwarding failure is a (store-to-load) data dependency, bank
/// conflicts and NACKs are structural hazards. A real miss never bubbles
/// here — its cost shows up at the consumer, via the scoreboard.
fn replay_bubble(cause: ReplayCause) -> (u64, StallCause) {
    match cause {
        ReplayCause::ForwardFail => (REPLAY_SLOW_CYCLES, StallCause::DataDependency),
        ReplayCause::DcacheReplay | ReplayCause::BankConflict => {
            (REPLAY_FAST_CYCLES, StallCause::Structural)
        }
        ReplayCause::DcacheMiss => (0, StallCause::DataDependency),
    }
}

pub use nbl_mem::system::L2Params;

/// A recoverable engine failure, reported instead of aborting the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// The engine had to wait for a fill (a pending register, or a retry
    /// after an MSHR rejection) but no fetch was outstanding. This means
    /// the scoreboard and the memory system disagree — a model invariant
    /// violation the caller can surface instead of a panic.
    NoOutstandingFetch,
    /// A trace-tape entry was structurally invalid — e.g. a load without
    /// a recorded destination register. The recorder upholds this by
    /// construction, so hitting it means the tape bytes were corrupted;
    /// replay surfaces the entry index instead of panicking mid-sweep.
    MalformedTape {
        /// Index of the offending tape entry.
        index: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::NoOutstandingFetch => {
                write!(f, "engine waited for a fill but no fetch is outstanding")
            }
            EngineError::MalformedTape { index } => {
                write!(
                    f,
                    "malformed trace tape: load entry {index} has no destination"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Configuration of the shared engine. Equality is structural — the
/// worker arena uses it to decide whether a pooled processor can be
/// reused for an incoming run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Data cache (geometry, write policy, MSHR organization).
    pub cache: CacheConfig,
    /// Miss penalty in cycles (paper baseline: 16).
    pub miss_penalty: u32,
    /// If `true`, every data access hits: used to measure each workload's
    /// ideal cycle count (dual-issue IPC for the paper's §6 scaling).
    pub perfect_cache: bool,
    /// Minimum cycles between successive fetch completions: 0 is the
    /// paper's fully pipelined memory; larger values model a
    /// bandwidth-limited bus (ablation only).
    pub memory_gap: u32,
    /// Optional second-level cache (extension; `None` reproduces the
    /// paper's flat L1 + memory hierarchy).
    pub l2: Option<L2Params>,
}

impl EngineConfig {
    /// Baseline memory (16-cycle penalty) over the given cache.
    pub fn with_cache(cache: CacheConfig) -> EngineConfig {
        EngineConfig {
            cache,
            miss_penalty: 16,
            perfect_cache: false,
            memory_gap: 0,
            l2: None,
        }
    }

    /// The memory-system side of this configuration.
    fn mem_config(&self) -> MemSystemConfig {
        MemSystemConfig {
            cache: self.cache.clone(),
            miss_penalty: self.miss_penalty,
            memory_gap: self.memory_gap,
            l2: self.l2.clone(),
            retire: RetirePolicy::Free,
        }
    }
}

/// The operation of a pre-decoded memory-barrier entry. Decoding
/// validates the tape structure once per barrier (a load must carry a
/// destination), so the per-engine step is infallible on the fast path.
enum GroupOp {
    /// Alu or Branch: issues in one cycle, touches no memory state.
    Free,
    /// A load with its (validated) destination and format.
    Load {
        /// Destination register the fill will wake.
        dst: PhysReg,
        /// Access width/sign.
        format: LoadFormat,
    },
    /// A store.
    Store,
}

/// One memory-barrier tape entry decoded once for a whole fused group:
/// the packed-array fields (operation, destination, load format) plus the
/// address split — block, set, tag, offset — under the group's shared
/// geometry. The generic fused walk re-derives all of this once per
/// engine; the specialized kernel derives it here, once per barrier, for
/// every engine of the group.
struct GroupEntry {
    op: GroupOp,
    decoded: DecodedAddr,
}

impl GroupEntry {
    #[inline]
    fn decode(
        tape: &TraceTape,
        b: usize,
        group: &FusedMemGroup,
    ) -> Result<GroupEntry, EngineError> {
        let op = match tape.kind(b) {
            TapeKind::Alu | TapeKind::Branch => GroupOp::Free,
            TapeKind::Load => GroupOp::Load {
                dst: tape.dst(b).ok_or(EngineError::MalformedTape { index: b })?,
                format: tape.format(b),
            },
            TapeKind::Store => GroupOp::Store,
        };
        Ok(GroupEntry {
            op,
            decoded: group.decode(tape.addr(b)),
        })
    }
}

/// The shared execution engine. See the module docs.
#[derive(Debug, Clone)]
pub struct Core {
    mem: MemorySystem,
    scoreboard: Scoreboard,
    now: Cycle,
    stats: CpuStats,
    sampler: InFlightSampler,
    perfect: bool,
}

impl Core {
    /// Creates an engine at cycle zero with a cold cache.
    pub fn new(config: EngineConfig) -> Core {
        Core {
            mem: MemorySystem::new(config.mem_config()),
            scoreboard: Scoreboard::new(),
            now: Cycle::ZERO,
            stats: CpuStats::default(),
            sampler: InFlightSampler::new(),
            perfect: config.perfect_cache,
        }
    }

    /// Returns the core to its freshly-built state — cold cache, empty
    /// scoreboard, cycle zero, zero counters — while keeping the memory
    /// system's internal allocations for reuse. A reset core produces
    /// bit-identical results to a newly constructed one; only the
    /// allocator traffic differs.
    pub fn reset(&mut self) {
        self.mem.reset();
        self.scoreboard = Scoreboard::new();
        self.now = Cycle::ZERO;
        self.stats = CpuStats::default();
        self.sampler = InFlightSampler::new();
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Accumulated statistics.
    #[inline]
    pub fn stats(&self) -> &CpuStats {
        &self.stats
    }

    /// The in-flight occupancy sampler (Fig. 6 histograms).
    #[inline]
    pub fn sampler(&self) -> &InFlightSampler {
        &self.sampler
    }

    /// The memory system behind the port (counters, trace access).
    #[inline]
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// The data cache (for miss-rate counters).
    #[inline]
    pub fn cache(&self) -> &LockupFreeCache {
        self.mem.l1()
    }

    /// The scoreboard (pending registers).
    #[inline]
    pub fn scoreboard(&self) -> &Scoreboard {
        &self.scoreboard
    }

    /// Starts recording miss-lifecycle events (see [`nbl_mem::event`]);
    /// the ring keeps the last `ring_capacity` raw events.
    pub fn enable_mem_tracing(&mut self, ring_capacity: usize) {
        self.mem.enable_tracing(ring_capacity);
    }

    /// Stops tracing and returns the recorded trace, if any.
    pub fn take_mem_trace(&mut self) -> Option<nbl_mem::event::MemTrace> {
        self.mem.take_trace()
    }

    /// Starts the per-access outcome tap (see
    /// [`nbl_mem::MemorySystem::enable_outcome_tap`]): one
    /// [`nbl_mem::AccessOutcome`] per finally-resolved memory access, in
    /// program order. The static cache oracle's cross-check probe.
    pub fn enable_outcome_tap(&mut self) {
        self.mem.enable_outcome_tap();
    }

    /// Stops the outcome tap and returns the recorded outcomes, if any.
    pub fn take_outcomes(&mut self) -> Option<Vec<nbl_mem::AccessOutcome>> {
        self.mem.take_outcomes()
    }

    /// Advances time to `to` (clamped), charging the elapsed cycles to
    /// `cause`.
    fn stall_until(&mut self, to: Cycle, cause: StallCause) {
        if to <= self.now {
            return;
        }
        let cycles = to.since(self.now);
        self.stats.add_stall(cause, cycles);
        self.now = to;
    }

    /// Applies one fill on the processor side: wakes every waiting
    /// register and updates the sampler at the fill's own timestamp.
    fn apply_fill(&mut self, fill: &FillEvent) {
        self.sampler.advance(fill.at);
        for r in &fill.targets {
            if let Dest::Reg(reg) = r.dest {
                self.scoreboard.clear(reg);
            }
        }
        self.sampler.on_fill(fill.targets.len());
    }

    /// Processes every fetch that has completed by the current time.
    pub fn drain_fills(&mut self) {
        let Core {
            mem,
            scoreboard,
            sampler,
            now,
            ..
        } = self;
        mem.advance_to(*now, |fill| {
            sampler.advance(fill.at);
            for r in &fill.targets {
                if let Dest::Reg(reg) = r.dest {
                    scoreboard.clear(reg);
                }
            }
            sampler.on_fill(fill.targets.len());
        });
    }

    /// Stalls (charging `cause`) until the earliest outstanding fetch
    /// completes, and applies it.
    ///
    /// # Errors
    ///
    /// [`EngineError::NoOutstandingFetch`] if nothing is in flight — the
    /// caller believed a fill was owed (a pending register or a rejected
    /// miss) but the memory system disagrees.
    fn wait_for_next_fill(&mut self, cause: StallCause) -> Result<(), EngineError> {
        let fill = self
            .mem
            .advance_to_next_event()
            .map_err(|_| EngineError::NoOutstandingFetch)?;
        self.stall_until(fill.at, cause);
        self.apply_fill(&fill);
        self.mem.recycle_fill(fill);
        Ok(())
    }

    /// Stalls until `reg` is valid (true-data-dependency stall).
    ///
    /// # Errors
    ///
    /// [`EngineError::NoOutstandingFetch`] if `reg` is pending but no
    /// fetch is in flight to wake it.
    pub fn wait_for_reg(&mut self, reg: PhysReg) -> Result<(), EngineError> {
        while self.scoreboard.is_pending(reg) {
            self.wait_for_next_fill(StallCause::DataDependency)?;
        }
        Ok(())
    }

    /// Resolves every register hazard of `inst`: sources (RAW) and
    /// destination (WAW — the fill of an earlier load must not clobber
    /// this instruction's result).
    ///
    /// # Errors
    ///
    /// [`EngineError::NoOutstandingFetch`] on a scoreboard/memory-system
    /// disagreement (see [`Core::wait_for_reg`]).
    pub fn resolve_hazards(&mut self, inst: &DynInst) -> Result<(), EngineError> {
        for src in inst.sources() {
            self.wait_for_reg(src)?;
        }
        if let Some(dst) = inst.dst() {
            self.wait_for_reg(dst)?;
        }
        Ok(())
    }

    /// `true` if `inst` could issue right now without waiting on any
    /// pending register (used by the dual-issue pairing check).
    pub fn hazards_clear(&self, inst: &DynInst) -> bool {
        inst.sources().all(|s| !self.scoreboard.is_pending(s))
            && inst.dst().is_none_or(|d| !self.scoreboard.is_pending(d))
    }

    /// Executes the operation of `inst` at the current cycle, resolving
    /// structural stalls internally. Does **not** advance the issue clock;
    /// the issue policy does that (it may place two instructions in one
    /// cycle).
    ///
    /// # Errors
    ///
    /// [`EngineError::NoOutstandingFetch`] if a structural retry had no
    /// fill to wait on.
    pub fn execute(&mut self, inst: &DynInst) -> Result<(), EngineError> {
        match inst.kind {
            DynKind::Alu { .. } => {}
            DynKind::Load { addr, dst, format } => self.execute_load(addr, dst, format)?,
            DynKind::Store { addr } => self.execute_store(addr),
        }
        self.stats.instructions += 1;
        if inst.is_load() {
            self.stats.loads += 1;
        } else if inst.is_store() {
            self.stats.stores += 1;
        }
        Ok(())
    }

    /// Tape-indexed twin of [`Core::resolve_hazards`]: resolves entry `i`'s
    /// register hazards straight from the packed arrays (sources in
    /// recorded order, then the destination) without materializing a
    /// [`DynInst`].
    ///
    /// # Errors
    ///
    /// [`EngineError::NoOutstandingFetch`] as for [`Core::resolve_hazards`].
    pub fn replay_hazards(&mut self, tape: &TraceTape, i: usize) -> Result<(), EngineError> {
        if !self.scoreboard.any_pending() {
            return Ok(());
        }
        let [s0, s1] = tape.srcs(i);
        if let Some(s) = s0 {
            self.wait_for_reg(s)?;
        }
        if let Some(s) = s1 {
            self.wait_for_reg(s)?;
        }
        if let Some(d) = tape.dst(i) {
            self.wait_for_reg(d)?;
        }
        Ok(())
    }

    /// Tape-indexed twin of [`Core::hazards_clear`].
    pub fn replay_hazards_clear(&self, tape: &TraceTape, i: usize) -> bool {
        let [s0, s1] = tape.srcs(i);
        s0.is_none_or(|s| !self.scoreboard.is_pending(s))
            && s1.is_none_or(|s| !self.scoreboard.is_pending(s))
            && tape.dst(i).is_none_or(|d| !self.scoreboard.is_pending(d))
    }

    /// Tape-indexed twin of [`Core::execute`]: performs entry `i`'s
    /// operation and stats accounting directly from the packed arrays.
    ///
    /// # Errors
    ///
    /// [`EngineError::NoOutstandingFetch`] as for [`Core::execute`], and
    /// [`EngineError::MalformedTape`] if entry `i` is a load with no
    /// recorded destination.
    pub fn replay_execute(&mut self, tape: &TraceTape, i: usize) -> Result<(), EngineError> {
        match tape.kind(i) {
            TapeKind::Alu | TapeKind::Branch => {}
            TapeKind::Load => {
                let dst = tape.dst(i).ok_or(EngineError::MalformedTape { index: i })?;
                self.execute_load(tape.addr(i), dst, tape.format(i))?;
                self.stats.loads += 1;
            }
            TapeKind::Store => {
                self.execute_store(tape.addr(i));
                self.stats.stores += 1;
            }
        }
        self.stats.instructions += 1;
        Ok(())
    }

    /// Issues `count` consecutive hazard-free non-memory instructions in
    /// bulk — the replay fast path for the gaps between a tape's barrier
    /// entries (see [`TraceTape::barriers`]). Each such entry is Alu or
    /// Branch and touches no register whose most recent writer is a load,
    /// so it cannot stall and its issue iteration reduces to one
    /// instruction counted and one cycle elapsed. Fills may still be in
    /// flight: they carry their own completion timestamps, so deferring
    /// the drain to the next barrier (which drains before doing anything
    /// else) leaves every observable — stall accounting, sampler
    /// timeline, cache state — bit-identical to `count` ordinary issue
    /// iterations.
    #[inline]
    pub fn issue_free_run(&mut self, count: usize) {
        self.stats.instructions += count as u64;
        self.now = self.now.plus(count as u64);
    }

    /// Replays a recorded tape through the barrier loop: bulk-issues the
    /// hazard-free gaps between barriers ([`TraceTape::barriers`]) and
    /// runs the drain → hazards → execute → tick sequence only at the
    /// barriers themselves.
    ///
    /// A further fast path applies when the engine is *quiescent* (no
    /// fetch outstanding — which also means no register is pending, since
    /// a pending register always awaits a fill): a non-memory barrier
    /// then cannot stall and cannot observe any state change, so it
    /// issues in bulk exactly like a gap entry.
    ///
    /// # Errors
    ///
    /// The first [`EngineError`] any entry hits.
    pub fn replay(&mut self, tape: &TraceTape) -> Result<(), EngineError> {
        let barriers = tape.barriers();
        let n = tape.len();
        let mut i = 0; // next instruction index to account for
        let mut j = 0; // next barrier to process
        while j < barriers.len() {
            if self.mem.next_event().is_none() {
                // Quiescent: skip ahead to the next *memory* barrier —
                // every non-memory barrier until then is hazard-free and
                // the whole span bulk-issues like a gap. The tape's packed
                // flag plane lets the scan stride over non-memory spans a
                // u64 word (64 barriers) at a time.
                j = tape.next_mem_barrier(j);
                let next = barriers.get(j).map_or(n, |&b| barrier_index(b));
                if next > i {
                    self.issue_free_run(next - i);
                    i = next;
                }
                let Some(&b) = barriers.get(j) else { break };
                // The memory barrier itself: nothing outstanding, so no
                // drain and no register hazard is possible.
                self.replay_execute(tape, barrier_index(b))?;
                self.tick();
                i = barrier_index(b) + 1;
                j += 1;
            } else {
                let b = barrier_index(barriers[j]);
                if b > i {
                    self.issue_free_run(b - i);
                }
                self.drain_fills();
                self.replay_hazards(tape, b)?;
                self.replay_execute(tape, b)?;
                self.tick();
                i = b + 1;
                j += 1;
            }
        }
        if i < n {
            self.issue_free_run(n - i);
        }
        Ok(())
    }

    /// Replays one recorded tape through several engines in lockstep,
    /// walking the barrier index (and decoding each entry's packed bytes)
    /// once for the whole group instead of once per engine — the fused
    /// fast path for sweep rows that differ only in hardware
    /// configuration over a shared tape.
    ///
    /// Each engine keeps its own instruction cursor and processes exactly
    /// the barriers the scalar [`Core::replay`] would: a *memory* barrier
    /// is stepped by every engine; a non-memory barrier only by engines
    /// with a fetch outstanding. For a quiescent engine a non-memory
    /// barrier cannot stall or observe any state change, so deferring it
    /// into the next bulk issue is exactly the scalar loop's quiescent
    /// fast path — the fused walk is bit-identical to `cores.len()`
    /// independent replays by construction (pinned by tests and the
    /// sweep-level refactor-equivalence goldens). When every engine is
    /// quiescent at once the walk additionally strides to the next memory
    /// barrier through the tape's packed flag plane, sharing one chunked
    /// scan across the group.
    ///
    /// # Errors
    ///
    /// The first [`EngineError`] any engine hits; engines earlier in the
    /// slice will have advanced past later ones when this happens, so the
    /// group's results must be discarded as a unit.
    pub fn replay_fused(tape: &TraceTape, cores: &mut [&mut Core]) -> Result<(), EngineError> {
        if Self::group_qualifies_direct(cores) {
            // The shared-geometry check doubles as the soundness gate for
            // sharing one address decode across the group; a mixed group
            // simply stays on the generic per-core walk below.
            if let Ok(group) = FusedMemGroup::new(cores.iter().map(|c| &c.mem)) {
                return Self::replay_fused_direct(tape, cores, &group);
            }
        }
        let barriers = tape.barriers();
        let n = tape.len();
        // Per-engine cursor: the next instruction index to account for.
        let mut cursors = vec![0usize; cores.len()];
        let mut j = 0;
        while j < barriers.len() {
            if cores.iter().all(|c| c.mem.next_event().is_none()) {
                // Whole group quiescent: one shared chunked scan to the
                // next memory barrier; the skipped span bulk-issues per
                // engine at that barrier's free-run below.
                j = tape.next_mem_barrier(j);
                let Some(&entry) = barriers.get(j) else { break };
                let b = barrier_index(entry);
                for (core, i) in cores.iter_mut().zip(&mut cursors) {
                    if b > *i {
                        core.issue_free_run(b - *i);
                    }
                    // Nothing outstanding: no drain, no hazard possible.
                    core.replay_execute(tape, b)?;
                    core.tick();
                    *i = b + 1;
                }
            } else {
                let entry = barriers[j];
                let b = barrier_index(entry);
                let is_mem = barrier_is_mem(entry);
                for (core, i) in cores.iter_mut().zip(&mut cursors) {
                    let quiescent = core.mem.next_event().is_none();
                    if quiescent && !is_mem {
                        // The scalar quiescent fast path: this barrier
                        // bulk-issues with the gap at the engine's next
                        // memory barrier.
                        continue;
                    }
                    if b > *i {
                        core.issue_free_run(b - *i);
                    }
                    if !quiescent {
                        core.drain_fills();
                        core.replay_hazards(tape, b)?;
                    }
                    core.replay_execute(tape, b)?;
                    core.tick();
                    *i = b + 1;
                }
            }
            j += 1;
        }
        for (core, i) in cores.iter_mut().zip(&cursors) {
            if *i < n {
                core.issue_free_run(n - *i);
            }
        }
        Ok(())
    }

    /// `true` when every engine in the group matches the specialized
    /// kernel's shape: direct-mapped L1 (replacement is then irrelevant —
    /// the lone way is always the victim), no L2, no victim buffer, no
    /// tracing, no perfect-cache override. The group size is capped at 64
    /// so quiescence fits one bitmask word. This is the dominant sweep
    /// shape: the whole bench grid and the paper's baseline configurations
    /// qualify.
    fn group_qualifies_direct(cores: &[&mut Core]) -> bool {
        !cores.is_empty()
            && cores.len() <= 64
            && cores.iter().all(|c| {
                let cfg = c.mem.l1().config();
                cfg.geometry.ways() == 1
                    && cfg.victim_entries == 0
                    && !c.mem.has_l2()
                    && c.mem.trace().is_none()
                    && !c.perfect
            })
    }

    /// The specialized monomorphic twin of the generic fused walk for
    /// groups passing [`Core::group_qualifies_direct`]: each memory
    /// barrier's packed tape fields and address split are decoded once
    /// via the [`FusedMemGroup`] and fanned out; a quiescent engine's
    /// access takes the direct-mapped hit fast path (one tag compare, no
    /// enum dispatch, no L2 plumbing) and falls back to the full decoded
    /// port on a miss. Group quiescence lives in a bitmask, so the
    /// all-quiescent check is one compare and non-memory barriers visit
    /// only the engines with a fetch in flight. Step for step this runs
    /// exactly what the generic walk runs — the fast paths are
    /// bit-identical by construction (pinned by the mixed-config and
    /// sweep-equivalence tests).
    fn replay_fused_direct(
        tape: &TraceTape,
        cores: &mut [&mut Core],
        group: &FusedMemGroup,
    ) -> Result<(), EngineError> {
        let barriers = tape.barriers();
        let n = tape.len();
        let mut cursors = vec![0usize; cores.len()];
        let all: u64 = if cores.len() >= 64 {
            u64::MAX
        } else {
            (1u64 << cores.len()) - 1
        };
        let mut quiescent: u64 = 0;
        for (k, core) in cores.iter().enumerate() {
            if core.mem.next_event().is_none() {
                quiescent |= 1 << k;
            }
        }
        let mut j = 0;
        while j < barriers.len() {
            if quiescent == all {
                // Whole group quiescent: one shared chunked scan to the
                // next memory barrier, one shared decode of its entry.
                j = tape.next_mem_barrier(j);
                let Some(&entry) = barriers.get(j) else { break };
                let b = barrier_index(entry);
                let e = GroupEntry::decode(tape, b, group)?;
                // The operation is one and the same for the whole group,
                // so the dispatch happens once out here and each arm is a
                // tight per-engine loop: free-run span, one direct-mapped
                // tag compare, counters, tick. Nothing is outstanding, so
                // no drain and no hazard is possible; a hit cannot launch
                // a fetch, so quiescence survives it without re-probing
                // the memory pipe.
                match e.op {
                    GroupOp::Free => {
                        for (core, i) in cores.iter_mut().zip(&mut cursors) {
                            core.issue_free_run(b + 1 - *i);
                            *i = b + 1;
                        }
                    }
                    GroupOp::Load { dst, format } => {
                        for (k, (core, i)) in cores.iter_mut().zip(&mut cursors).enumerate() {
                            if b > *i {
                                core.issue_free_run(b - *i);
                            }
                            let hit = core.mem.load_hit_direct(e.decoded.set, e.decoded.tag);
                            if !hit {
                                core.execute_load_decoded(&e.decoded, dst, format)?;
                            }
                            core.stats.loads += 1;
                            core.stats.instructions += 1;
                            core.tick();
                            *i = b + 1;
                            if !hit && core.mem.next_event().is_some() {
                                quiescent &= !(1 << k);
                            }
                        }
                    }
                    GroupOp::Store => {
                        for (k, (core, i)) in cores.iter_mut().zip(&mut cursors).enumerate() {
                            if b > *i {
                                core.issue_free_run(b - *i);
                            }
                            let now = core.now;
                            let hit = core.mem.store_hit_direct(
                                e.decoded.addr,
                                e.decoded.set,
                                e.decoded.tag,
                                now,
                            );
                            if !hit {
                                core.execute_store_decoded(&e.decoded);
                            }
                            core.stats.stores += 1;
                            core.stats.instructions += 1;
                            core.tick();
                            *i = b + 1;
                            if !hit && core.mem.next_event().is_some() {
                                quiescent &= !(1 << k);
                            }
                        }
                    }
                }
            } else {
                let entry = barriers[j];
                let b = barrier_index(entry);
                if barrier_is_mem(entry) {
                    let e = GroupEntry::decode(tape, b, group)?;
                    for (k, (core, i)) in cores.iter_mut().zip(&mut cursors).enumerate() {
                        let was_quiescent = quiescent & (1 << k) != 0;
                        if b > *i {
                            core.issue_free_run(b - *i);
                        }
                        if !was_quiescent {
                            core.drain_fills();
                            core.replay_hazards(tape, b)?;
                        }
                        let fast = match e.op {
                            GroupOp::Free => true,
                            GroupOp::Load { dst, format } => {
                                let hit = core.mem.load_hit_direct(e.decoded.set, e.decoded.tag);
                                if !hit {
                                    core.execute_load_decoded(&e.decoded, dst, format)?;
                                }
                                core.stats.loads += 1;
                                hit
                            }
                            GroupOp::Store => {
                                let now = core.now;
                                let hit = core.mem.store_hit_direct(
                                    e.decoded.addr,
                                    e.decoded.set,
                                    e.decoded.tag,
                                    now,
                                );
                                if !hit {
                                    core.execute_store_decoded(&e.decoded);
                                }
                                core.stats.stores += 1;
                                hit
                            }
                        };
                        core.stats.instructions += 1;
                        core.tick();
                        *i = b + 1;
                        // A hit on a quiescent engine leaves it quiescent;
                        // anything else (a launch, or a drain that may have
                        // emptied the pipe) re-probes.
                        if !(was_quiescent && fast) {
                            if core.mem.next_event().is_none() {
                                quiescent |= 1 << k;
                            } else {
                                quiescent &= !(1 << k);
                            }
                        }
                    }
                } else {
                    // Non-memory barrier: quiescent engines defer it into
                    // their next bulk issue (the scalar fast path); the
                    // mask walk visits only the engines with work.
                    let mut busy = !quiescent & all;
                    while busy != 0 {
                        let k = busy.trailing_zeros() as usize;
                        busy &= busy - 1;
                        let core = &mut *cores[k];
                        let i = &mut cursors[k];
                        if b > *i {
                            core.issue_free_run(b - *i);
                        }
                        core.drain_fills();
                        core.replay_hazards(tape, b)?;
                        core.replay_execute(tape, b)?;
                        core.tick();
                        *i = b + 1;
                        if core.mem.next_event().is_none() {
                            quiescent |= 1 << k;
                        }
                    }
                }
            }
            j += 1;
        }
        for (core, i) in cores.iter_mut().zip(&cursors) {
            if *i < n {
                core.issue_free_run(n - *i);
            }
        }
        Ok(())
    }

    fn execute_load(
        &mut self,
        addr: Addr,
        dst: PhysReg,
        format: LoadFormat,
    ) -> Result<(), EngineError> {
        if self.perfect {
            return Ok(());
        }
        let decoded = self.mem.l1().config().geometry.decode(addr);
        self.execute_load_decoded(&decoded, dst, format)
    }

    /// [`Core::execute_load`] with the address pre-decoded under this
    /// engine's L1 geometry — the fused group step decodes each barrier
    /// entry once and hands the split to every engine.
    fn execute_load_decoded(
        &mut self,
        decoded: &DecodedAddr,
        dst: PhysReg,
        format: LoadFormat,
    ) -> Result<(), EngineError> {
        if self.perfect {
            return Ok(());
        }
        let mut stalled_structurally = false;
        loop {
            match self
                .mem
                .access_load_decoded(decoded, Dest::Reg(dst), format, self.now)
            {
                LoadResponse::Hit => break,
                LoadResponse::VictimHit => {
                    // One cycle to swap the line back from the victim
                    // buffer; the data is then as good as a hit.
                    self.stall_until(self.now.plus(1), StallCause::Blocking);
                    break;
                }
                LoadResponse::Pending { kind } => {
                    self.sampler.advance(self.now);
                    self.sampler.on_miss(kind == MissKind::Primary);
                    self.scoreboard.set_pending(dst);
                    break;
                }
                LoadResponse::Ready { at } => {
                    // Lockup cache: the port serviced the whole miss; the
                    // processor exposes the full penalty as a blocking
                    // stall and the register is then valid.
                    self.stats.blocking_load_misses += 1;
                    self.stall_until(at, StallCause::Blocking);
                    self.sampler.advance(self.now);
                    break;
                }
                LoadResponse::Retry(_reason) => {
                    // Structural hazard: wait for a fetch to complete, retry.
                    if !stalled_structurally {
                        stalled_structurally = true;
                        self.stats.structural_stall_misses += 1;
                    }
                    self.wait_for_next_fill(StallCause::Structural)?;
                }
            }
        }
        Ok(())
    }

    fn execute_store(&mut self, addr: Addr) {
        if self.perfect {
            return;
        }
        let decoded = self.mem.l1().config().geometry.decode(addr);
        self.execute_store_decoded(&decoded);
    }

    /// [`Core::execute_store`] with the address pre-decoded under this
    /// engine's L1 geometry.
    fn execute_store_decoded(&mut self, decoded: &DecodedAddr) {
        if self.perfect {
            return;
        }
        let resp = self.mem.access_store_decoded(decoded, self.now);
        self.apply_store_response(resp);
    }

    fn apply_store_response(&mut self, resp: StoreResponse) {
        match resp {
            StoreResponse::Done => {}
            StoreResponse::Ready { at } => {
                // `mc=0 + wma`: the port fetched the line synchronously;
                // expose the full penalty as a blocking stall.
                self.stats.blocking_store_misses += 1;
                self.stall_until(at, StallCause::Blocking);
                self.sampler.advance(self.now);
            }
            StoreResponse::Pending { kind } => {
                // Non-blocking write allocate: the store data waits in the
                // write buffer for the line; the processor does not stall.
                self.stats.nonblocking_store_misses += 1;
                self.sampler.advance(self.now);
                self.sampler.on_miss(kind == MissKind::Primary);
            }
        }
    }

    /// Twin of [`Core::execute`] for the replaying pipeline model: loads go
    /// through the speculative port and may bounce through replay bubbles,
    /// stores feed the replay classifier.
    ///
    /// # Errors
    ///
    /// [`EngineError::NoOutstandingFetch`] if a NACK fallback had no fill
    /// to wait on.
    pub(crate) fn execute_speculative(
        &mut self,
        inst: &DynInst,
        attr: &mut ReplayAttribution,
    ) -> Result<(), EngineError> {
        match inst.kind {
            DynKind::Alu { .. } => {}
            DynKind::Load { addr, dst, format } => {
                self.execute_load_speculative(addr, dst, format, attr)?;
            }
            DynKind::Store { addr } => self.execute_store_speculative(addr),
        }
        self.stats.instructions += 1;
        if inst.is_load() {
            self.stats.loads += 1;
        } else if inst.is_store() {
            self.stats.stores += 1;
        }
        Ok(())
    }

    /// Tape-indexed twin of [`Core::execute_speculative`].
    ///
    /// # Errors
    ///
    /// As for [`Core::execute_speculative`], plus
    /// [`EngineError::MalformedTape`] if entry `i` is a load with no
    /// recorded destination.
    pub(crate) fn replay_execute_speculative(
        &mut self,
        tape: &TraceTape,
        i: usize,
        attr: &mut ReplayAttribution,
    ) -> Result<(), EngineError> {
        match tape.kind(i) {
            TapeKind::Alu | TapeKind::Branch => {}
            TapeKind::Load => {
                let dst = tape.dst(i).ok_or(EngineError::MalformedTape { index: i })?;
                self.execute_load_speculative(tape.addr(i), dst, tape.format(i), attr)?;
                self.stats.loads += 1;
            }
            TapeKind::Store => {
                self.execute_store_speculative(tape.addr(i));
                self.stats.stores += 1;
            }
        }
        self.stats.instructions += 1;
        Ok(())
    }

    /// One speculatively issued load. A thrown-back access charges its
    /// cause's replay-bubble penalty (fast for bank conflicts and NACKs,
    /// slow for forwarding failures) and reissues; a second consecutive
    /// NACK falls back to the stalling pipeline's wait-for-a-fill, with
    /// the elapsed cycles still attributed to [`ReplayCause::DcacheReplay`].
    /// A genuine miss completes out of order through the scoreboard exactly
    /// as in the stalling model and is counted under
    /// [`ReplayCause::DcacheMiss`].
    fn execute_load_speculative(
        &mut self,
        addr: Addr,
        dst: PhysReg,
        format: LoadFormat,
        attr: &mut ReplayAttribution,
    ) -> Result<(), EngineError> {
        if self.perfect {
            return Ok(());
        }
        let mut reissue = false;
        let mut nacked = false;
        let mut stalled_structurally = false;
        loop {
            let resp = self.mem.access_load_replay(
                addr,
                Dest::Reg(dst),
                format,
                self.now,
                reissue,
                nacked,
            );
            match resp {
                ReplayLoadResponse::Replay(cause) => {
                    if cause == ReplayCause::DcacheReplay {
                        if !stalled_structurally {
                            stalled_structurally = true;
                            self.stats.structural_stall_misses += 1;
                        }
                        if nacked {
                            // Second consecutive NACK: the replay queue
                            // stops spinning and waits for a fill to free
                            // MSHR resources, like the stalling pipeline.
                            let before = self.now;
                            self.wait_for_next_fill(StallCause::Structural)?;
                            attr.stall_cycles[cause.index()] += self.now.since(before);
                            continue;
                        }
                        nacked = true;
                    }
                    attr.counts[cause.index()] += 1;
                    let (penalty, bucket) = replay_bubble(cause);
                    let before = self.now;
                    self.stall_until(self.now.plus(penalty), bucket);
                    attr.stall_cycles[cause.index()] += self.now.since(before);
                    // Fills that landed during the bubble wake their
                    // registers before the reissue probes the cache.
                    self.drain_fills();
                    reissue = true;
                }
                ReplayLoadResponse::Proceed(resp) => match resp {
                    LoadResponse::Hit => break,
                    LoadResponse::VictimHit => {
                        self.stall_until(self.now.plus(1), StallCause::Blocking);
                        break;
                    }
                    LoadResponse::Pending { kind } => {
                        attr.counts[ReplayCause::DcacheMiss.index()] += 1;
                        self.sampler.advance(self.now);
                        self.sampler.on_miss(kind == MissKind::Primary);
                        self.scoreboard.set_pending(dst);
                        break;
                    }
                    LoadResponse::Ready { at } => {
                        self.stats.blocking_load_misses += 1;
                        self.stall_until(at, StallCause::Blocking);
                        self.sampler.advance(self.now);
                        break;
                    }
                    LoadResponse::Retry(_) => {
                        // The speculative port maps every rejection to a
                        // NACK replay; kept for defensive completeness.
                        if !stalled_structurally {
                            stalled_structurally = true;
                            self.stats.structural_stall_misses += 1;
                        }
                        self.wait_for_next_fill(StallCause::Structural)?;
                        reissue = true;
                    }
                },
            }
        }
        Ok(())
    }

    fn execute_store_speculative(&mut self, addr: Addr) {
        if self.perfect {
            return;
        }
        let resp = self.mem.access_store_replay(addr, self.now);
        self.apply_store_response(resp);
    }

    /// Advances the issue clock by one cycle (every instruction or
    /// co-issued group costs one cycle).
    pub fn tick(&mut self) {
        self.now = self.now.plus(1);
    }

    /// Finalizes the run: applies every outstanding fill (data that is
    /// still in flight when the program's last instruction issues wakes no
    /// one, so no stall is charged) and closes out the sampler.
    pub fn finish(&mut self) {
        while let Ok(fill) = self.mem.advance_to_next_event() {
            if fill.at > self.now {
                self.now = fill.at;
            }
            self.apply_fill(&fill);
            self.mem.recycle_fill(fill);
        }
        self.sampler.advance(self.now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbl_core::limit::Limit;
    use nbl_core::mshr::{MshrConfig, RegisterFileConfig, TargetPolicy};
    use nbl_core::types::LoadFormat;

    fn engine(mshr: MshrConfig) -> Core {
        Core::new(EngineConfig::with_cache(CacheConfig::baseline(mshr)))
    }

    fn issue(core: &mut Core, inst: &DynInst) {
        core.resolve_hazards(inst).unwrap();
        core.execute(inst).unwrap();
        core.tick();
    }

    fn mc1() -> MshrConfig {
        MshrConfig::Register(RegisterFileConfig {
            entries: Limit::Finite(1),
            targets: TargetPolicy::explicit(Limit::Finite(1)),
            max_outstanding_misses: Limit::Finite(1),
            max_fetches_per_set: Limit::Unlimited,
        })
    }

    #[test]
    fn load_use_stall_is_penalty_minus_distance() {
        let mut core = engine(mc1());
        let r1 = PhysReg::int(1);
        // Load (miss), one independent ALU op, then a use of the load.
        issue(
            &mut core,
            &DynInst::load(Addr(0x1000), r1, LoadFormat::WORD),
        );
        for _ in 0..3 {
            issue(&mut core, &DynInst::alu(PhysReg::int(2), [None, None]));
        }
        // Use issues after stalling until the fill at cycle 16.
        issue(&mut core, &DynInst::alu(PhysReg::int(3), [Some(r1), None]));
        // Load at cy0 (fill at 16), 3 ALU ops at cy1..3, use stalls 4..16.
        assert_eq!(core.stats().data_dep_stall_cycles, 12);
        assert_eq!(core.now(), Cycle(17));
    }

    #[test]
    fn blocking_cache_exposes_full_penalty() {
        let mut core = engine(MshrConfig::Blocking);
        issue(
            &mut core,
            &DynInst::load(Addr(0x40), PhysReg::int(1), LoadFormat::WORD),
        );
        assert_eq!(core.stats().blocking_stall_cycles, 16);
        assert_eq!(core.stats().blocking_load_misses, 1);
        assert_eq!(core.now(), Cycle(17));
        // The line is now resident: a reuse hits with no stall.
        issue(
            &mut core,
            &DynInst::load(Addr(0x48), PhysReg::int(2), LoadFormat::WORD),
        );
        assert_eq!(core.stats().total_stall_cycles(), 16);
    }

    #[test]
    fn structural_stall_waits_for_fill_then_retries() {
        let mut core = engine(mc1());
        issue(
            &mut core,
            &DynInst::load(Addr(0x1000), PhysReg::int(1), LoadFormat::WORD),
        );
        // Second load to a different line: mc=1 rejects; stalls until the
        // first fill (cycle 16), then becomes a fresh primary miss.
        issue(
            &mut core,
            &DynInst::load(Addr(0x2000), PhysReg::int(2), LoadFormat::WORD),
        );
        assert_eq!(core.stats().structural_stall_cycles, 15); // 1 -> 16
        assert_eq!(core.stats().structural_stall_misses, 1);
        assert_eq!(core.cache().counters().load_primary_misses, 2);
        assert!(!core.scoreboard().is_pending(PhysReg::int(1)));
        assert!(core.scoreboard().is_pending(PhysReg::int(2)));
    }

    #[test]
    fn secondary_miss_rides_the_same_fetch() {
        let fc1 = MshrConfig::Register(RegisterFileConfig {
            entries: Limit::Finite(1),
            targets: TargetPolicy::explicit(Limit::Unlimited),
            max_outstanding_misses: Limit::Unlimited,
            max_fetches_per_set: Limit::Unlimited,
        });
        let mut core = engine(fc1);
        issue(
            &mut core,
            &DynInst::load(Addr(0x1000), PhysReg::int(1), LoadFormat::WORD),
        );
        issue(
            &mut core,
            &DynInst::load(Addr(0x1008), PhysReg::int(2), LoadFormat::WORD),
        );
        assert_eq!(core.cache().counters().load_secondary_misses, 1);
        // Using the second register stalls only until the shared fill at 16.
        issue(&mut core, &DynInst::branch([Some(PhysReg::int(2)), None]));
        assert_eq!(core.stats().data_dep_stall_cycles, 14); // 2 -> 16
        assert!(
            !core.scoreboard().is_pending(PhysReg::int(1)),
            "fill wakes all targets at once"
        );
    }

    #[test]
    fn waw_hazard_stalls() {
        let mut core = engine(mc1());
        let r = PhysReg::int(1);
        issue(&mut core, &DynInst::load(Addr(0x1000), r, LoadFormat::WORD));
        // An ALU write to the same register must wait for the fill.
        issue(&mut core, &DynInst::alu(r, [None, None]));
        assert_eq!(core.stats().data_dep_stall_cycles, 15);
    }

    #[test]
    fn perfect_cache_never_stalls() {
        let mut cfg = EngineConfig::with_cache(CacheConfig::baseline(MshrConfig::Blocking));
        cfg.perfect_cache = true;
        let mut core = Core::new(cfg);
        for i in 0..100u64 {
            issue(
                &mut core,
                &DynInst::load(Addr(i * 64), PhysReg::int((i % 30) as u8), LoadFormat::WORD),
            );
        }
        assert_eq!(core.stats().total_stall_cycles(), 0);
        assert_eq!(core.now(), Cycle(100));
    }

    #[test]
    fn stores_never_stall_under_write_around() {
        let mut core = engine(mc1());
        for i in 0..50u64 {
            issue(&mut core, &DynInst::store(Addr(i * 4096), None));
        }
        assert_eq!(core.stats().total_stall_cycles(), 0);
        assert_eq!(core.stats().stores, 50);
        assert_eq!(core.memory().write_buffer_stats().writes, 50);
    }

    #[test]
    fn nonblocking_write_allocate_never_stalls() {
        let mut cache_cfg = CacheConfig::baseline(MshrConfig::Register(RegisterFileConfig {
            entries: Limit::Finite(4),
            targets: TargetPolicy::explicit(Limit::Unlimited),
            max_outstanding_misses: Limit::Unlimited,
            max_fetches_per_set: Limit::Unlimited,
        }));
        cache_cfg.write_miss = nbl_core::cache::WriteMissPolicy::WriteAllocate;
        let mut core = Core::new(EngineConfig::with_cache(cache_cfg));
        // Distinct sets: one cache size + one line apart.
        for i in 0..4u64 {
            issue(&mut core, &DynInst::store(Addr(i * 8224), None));
        }
        assert_eq!(
            core.stats().total_stall_cycles(),
            0,
            "tracked store misses do not stall"
        );
        assert_eq!(core.stats().nonblocking_store_misses, 4);
        assert_eq!(core.stats().blocking_store_misses, 0);
        // A fifth store miss finds no free MSHR and falls back to blocking.
        issue(&mut core, &DynInst::store(Addr(5 * 8224), None));
        assert_eq!(core.stats().blocking_store_misses, 1);
        assert!(core.stats().blocking_stall_cycles > 0);
        core.finish();
        assert_eq!(core.sampler().fetches_now(), 0);
        // After the fills, the lines are resident: stores now hit.
        let st = DynInst::store(Addr(0), None);
        core.resolve_hazards(&st).unwrap();
        core.execute(&st).unwrap();
        assert_eq!(
            core.stats().nonblocking_store_misses,
            4,
            "no new tracked miss"
        );
    }

    #[test]
    fn l2_hits_shorten_the_penalty() {
        use nbl_core::geometry::CacheGeometry;
        let mk = |l2: Option<L2Params>| {
            let mut cfg = EngineConfig::with_cache(CacheConfig::baseline(MshrConfig::Blocking));
            cfg.miss_penalty = 30;
            cfg.l2 = l2;
            Core::new(cfg)
        };
        let l2 = L2Params {
            geometry: CacheGeometry::direct_mapped(256 * 1024, 32).unwrap(),
            hit_penalty: 6,
            replacement: nbl_core::tag_array::ReplacementKind::Lru,
        };

        // Flat hierarchy: every blocking miss costs 30.
        let mut flat = mk(None);
        let a = Addr(0x10000);
        let b = Addr(0x20000); // conflicts with a in the 8KB L1, not in L2
        for addr in [a, b, a] {
            issue(
                &mut flat,
                &DynInst::load(addr, PhysReg::int(1), LoadFormat::WORD),
            );
        }
        assert_eq!(flat.stats().blocking_stall_cycles, 90);

        // Two-level: first touches miss L2 (30 each); the conflict re-miss
        // of `a` hits the L2 and costs only 6.
        let mut two = mk(Some(l2));
        for addr in [a, b, a] {
            issue(
                &mut two,
                &DynInst::load(addr, PhysReg::int(1), LoadFormat::WORD),
            );
        }
        assert_eq!(two.stats().blocking_stall_cycles, 30 + 30 + 6);
    }

    #[test]
    fn l2_hits_complete_out_of_order_under_nonblocking_l1() {
        use nbl_core::geometry::CacheGeometry;
        let mut cfg = EngineConfig::with_cache(CacheConfig::baseline(MshrConfig::Register(
            RegisterFileConfig {
                entries: Limit::Finite(4),
                targets: TargetPolicy::explicit(Limit::Unlimited),
                max_outstanding_misses: Limit::Unlimited,
                max_fetches_per_set: Limit::Unlimited,
            },
        )));
        cfg.miss_penalty = 30;
        cfg.l2 = Some(L2Params {
            geometry: CacheGeometry::direct_mapped(256 * 1024, 32).unwrap(),
            hit_penalty: 6,
            replacement: nbl_core::tag_array::ReplacementKind::Lru,
        });
        let mut core = Core::new(cfg);
        let a = Addr(0x10000);
        let b = Addr(0x20000);
        // Warm the L2 with `a` (L1 conflict evicts it from L1 via `b`).
        for addr in [a, b] {
            issue(
                &mut core,
                &DynInst::load(addr, PhysReg::int(1), LoadFormat::WORD),
            );
        }
        core.finish();
        let t0 = core.now();
        // Now: `b` is L1-resident; `a` was evicted but lives in L2. Issue a
        // long L2-missing load (new line) then the L2-hitting reload of `a`:
        // the later fetch finishes first and wakes its register first.
        issue(
            &mut core,
            &DynInst::load(Addr(0x40000), PhysReg::int(2), LoadFormat::WORD),
        );
        issue(
            &mut core,
            &DynInst::load(a, PhysReg::int(3), LoadFormat::WORD),
        );
        // Use the L2-hit result: it arrives ~6 cycles after issue even
        // though the L2-missing fetch is still outstanding.
        let use_r = DynInst::branch([Some(PhysReg::int(3)), None]);
        core.resolve_hazards(&use_r).unwrap();
        core.execute(&use_r).unwrap();
        let waited = core.now().since(t0);
        assert!(
            waited < 12,
            "L2 hit must not wait behind the L2 miss (waited {waited})"
        );
        assert!(
            core.scoreboard().is_pending(PhysReg::int(2)),
            "the long fetch is still in flight"
        );
        core.finish();
    }

    #[test]
    fn finish_drains_outstanding_fills() {
        let mut core = engine(mc1());
        issue(
            &mut core,
            &DynInst::load(Addr(0x1000), PhysReg::int(1), LoadFormat::WORD),
        );
        core.finish();
        assert_eq!(core.sampler().misses_now(), 0);
        assert_eq!(core.sampler().fetches_now(), 0);
    }

    #[test]
    fn waiting_with_nothing_in_flight_is_a_typed_error() {
        // Force the invariant violation by hand: mark a register pending
        // with no fetch outstanding, then resolve a use of it.
        let mut core = engine(mc1());
        core.scoreboard.set_pending(PhysReg::int(1));
        let use_i = DynInst::alu(PhysReg::int(2), [Some(PhysReg::int(1)), None]);
        assert_eq!(
            core.resolve_hazards(&use_i),
            Err(EngineError::NoOutstandingFetch)
        );
        assert_eq!(
            EngineError::NoOutstandingFetch.to_string(),
            "engine waited for a fill but no fetch is outstanding"
        );
    }

    #[test]
    fn mem_tracing_round_trip_through_the_engine() {
        let mut core = engine(mc1());
        core.enable_mem_tracing(32);
        issue(
            &mut core,
            &DynInst::load(Addr(0x1000), PhysReg::int(1), LoadFormat::WORD),
        );
        issue(
            &mut core,
            &DynInst::load(Addr(0x2000), PhysReg::int(2), LoadFormat::WORD),
        );
        core.finish();
        let trace = core.take_mem_trace().expect("tracing enabled");
        // mc=1: second load is rejected once, retries as a fresh primary.
        assert_eq!(trace.stats.rejected, 1);
        assert_eq!(trace.stats.fetches, 2);
        assert_eq!(trace.stats.fills, 2);
    }
}
