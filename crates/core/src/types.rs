//! Fundamental value types shared by every subsystem: byte addresses, cache
//! block addresses, cycle counts, physical registers and load formats.
//!
//! These are deliberate newtypes ([C-NEWTYPE]): an [`Addr`] is a byte address
//! in the simulated 48-bit physical address space, while a [`BlockAddr`] is an
//! address already shifted right by the cache's block-offset bits. Mixing the
//! two is the classic cache-simulator bug, so the type system rules it out.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

/// A byte address in the simulated physical address space.
///
/// The paper assumes a 64-bit virtual address architecture with 48 physical
/// address bits; we model the 48-bit physical space directly since the
/// simulated caches are physically indexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Number of physical address bits modeled (as in the paper's MSHR
    /// sizing arithmetic: 48-bit physical addresses).
    pub const PHYSICAL_BITS: u32 = 48;

    /// Returns the block address obtained by discarding `block_bits` low bits.
    ///
    /// `block_bits` is `log2(line size in bytes)`.
    #[inline]
    pub fn block(self, block_bits: u32) -> BlockAddr {
        BlockAddr(self.0 >> block_bits)
    }

    /// Returns the byte offset of this address within its cache block.
    #[inline]
    pub fn offset_in_block(self, block_bits: u32) -> u32 {
        (self.0 & ((1u64 << block_bits) - 1)) as u32
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-block (line) address: a byte address shifted right by the
/// block-offset bits. Two accesses with equal `BlockAddr` hit the same line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// Reconstructs the first byte address of this block.
    #[inline]
    pub fn first_byte(self, block_bits: u32) -> Addr {
        Addr(self.0 << block_bits)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:{:#x}", self.0)
    }
}

/// A simulation time point, measured in processor cycles from reset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The beginning of time.
    pub const ZERO: Cycle = Cycle(0);

    /// Returns this time advanced by `n` cycles.
    #[inline]
    #[must_use]
    pub fn plus(self, n: u64) -> Cycle {
        Cycle(self.0 + n)
    }

    /// Returns the number of cycles from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is after `self`.
    #[inline]
    pub fn since(self, earlier: Cycle) -> u64 {
        debug_assert!(earlier <= self, "time ran backwards: {earlier} > {self}");
        self.0 - earlier.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cy{}", self.0)
    }
}

/// The two architectural register files of the modeled machine
/// (32 integer + 32 floating-point registers, paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// Fixed-point (integer) register file.
    Int,
    /// Floating-point register file.
    Fp,
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "r"),
            RegClass::Fp => write!(f, "f"),
        }
    }
}

/// Number of architectural registers in each register file.
pub const REGS_PER_CLASS: u8 = 32;

/// A physical (architectural) register: `r0..r31` or `f0..f31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysReg {
    class: RegClass,
    index: u8,
}

impl PhysReg {
    /// Creates an integer register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[inline]
    pub fn int(index: u8) -> PhysReg {
        assert!(
            index < REGS_PER_CLASS,
            "integer register index {index} out of range"
        );
        PhysReg {
            class: RegClass::Int,
            index,
        }
    }

    /// Creates a floating-point register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[inline]
    pub fn fp(index: u8) -> PhysReg {
        assert!(
            index < REGS_PER_CLASS,
            "fp register index {index} out of range"
        );
        PhysReg {
            class: RegClass::Fp,
            index,
        }
    }

    /// The register file this register belongs to.
    #[inline]
    pub fn class(self) -> RegClass {
        self.class
    }

    /// The index within its register file (0..32).
    #[inline]
    pub fn index(self) -> u8 {
        self.index
    }

    /// A dense index over both files (0..64), used for scoreboard storage
    /// and for sizing the inverted MSHR.
    #[inline]
    pub fn dense_index(self) -> usize {
        match self.class {
            RegClass::Int => self.index as usize,
            RegClass::Fp => REGS_PER_CLASS as usize + self.index as usize,
        }
    }

    /// Inverse of [`PhysReg::dense_index`].
    ///
    /// # Panics
    ///
    /// Panics if `dense >= 64`.
    #[inline]
    pub fn from_dense(dense: usize) -> PhysReg {
        assert!(
            dense < 2 * REGS_PER_CLASS as usize,
            "dense register index {dense} out of range"
        );
        if dense < REGS_PER_CLASS as usize {
            PhysReg::int(dense as u8)
        } else {
            PhysReg::fp((dense - REGS_PER_CLASS as usize) as u8)
        }
    }
}

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.class, self.index)
    }
}

/// A destination that fetch data can be delivered to.
///
/// The inverted MSHR (paper §2.4) has one entry per possible destination:
/// every architectural register, plus the program counter, write-buffer
/// entries and instruction-prefetch buffers. Our processor model only ever
/// *uses* register destinations (stores never allocate in the baseline
/// write-around cache and the instruction cache is perfect), but the other
/// destinations participate in the hardware cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dest {
    /// An architectural register.
    Reg(PhysReg),
    /// The program counter (instruction fetch on a branch miss).
    Pc,
    /// A write-buffer entry awaiting merge with fetched data.
    WriteBuffer(u8),
    /// An instruction prefetch buffer slot.
    Prefetch(u8),
}

impl Dest {
    /// Returns the register if this destination is a register.
    #[inline]
    pub fn as_reg(self) -> Option<PhysReg> {
        match self {
            Dest::Reg(r) => Some(r),
            _ => None,
        }
    }
}

impl fmt::Display for Dest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dest::Reg(r) => write!(f, "{r}"),
            Dest::Pc => write!(f, "pc"),
            Dest::WriteBuffer(i) => write!(f, "wb{i}"),
            Dest::Prefetch(i) => write!(f, "pf{i}"),
        }
    }
}

impl From<PhysReg> for Dest {
    fn from(r: PhysReg) -> Self {
        Dest::Reg(r)
    }
}

/// Width of a memory access in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum AccessSize {
    /// 1 byte.
    B1,
    /// 2 bytes (halfword).
    B2,
    /// 4 bytes (word).
    B4,
    /// 8 bytes (doubleword).
    #[default]
    B8,
}

impl AccessSize {
    /// The access width in bytes.
    #[inline]
    pub fn bytes(self) -> u32 {
        match self {
            AccessSize::B1 => 1,
            AccessSize::B2 => 2,
            AccessSize::B4 => 4,
            AccessSize::B8 => 8,
        }
    }
}

impl fmt::Display for AccessSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

/// The formatting information an MSHR target field must carry so that the
/// load can be completed when its block returns (paper Fig. 1: width,
/// low-order byte address bits, sign extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LoadFormat {
    /// Access width.
    pub size: AccessSize,
    /// Whether sub-word data is sign extended when placed in the register.
    pub sign_extend: bool,
}

impl LoadFormat {
    /// A plain 8-byte (doubleword) load: the common case for FP code.
    pub const DOUBLE: LoadFormat = LoadFormat {
        size: AccessSize::B8,
        sign_extend: false,
    };

    /// A sign-extending 4-byte (word) load: the common case for integer code.
    pub const WORD: LoadFormat = LoadFormat {
        size: AccessSize::B4,
        sign_extend: true,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_block_split_roundtrips() {
        let a = Addr(0x1234_5678);
        let block_bits = 5; // 32-byte lines
        assert_eq!(a.block(block_bits).0, 0x1234_5678 >> 5);
        assert_eq!(a.offset_in_block(block_bits), 0x18);
        assert_eq!(
            a.block(block_bits).first_byte(block_bits).0 + u64::from(a.offset_in_block(block_bits)),
            a.0
        );
    }

    #[test]
    fn addresses_in_same_line_share_block() {
        let block_bits = 5;
        let a = Addr(0x1000);
        let b = Addr(0x101f);
        let c = Addr(0x1020);
        assert_eq!(a.block(block_bits), b.block(block_bits));
        assert_ne!(a.block(block_bits), c.block(block_bits));
    }

    #[test]
    fn cycle_arithmetic() {
        let t = Cycle(10);
        assert_eq!(t.plus(6), Cycle(16));
        assert_eq!(Cycle(16).since(t), 6);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time ran backwards")]
    fn cycle_since_panics_in_debug_when_backwards() {
        let _ = Cycle(5).since(Cycle(9));
    }

    #[test]
    fn dense_register_indexing_roundtrips() {
        for dense in 0..64 {
            assert_eq!(PhysReg::from_dense(dense).dense_index(), dense);
        }
        assert_eq!(PhysReg::int(3).dense_index(), 3);
        assert_eq!(PhysReg::fp(3).dense_index(), 35);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn register_index_bounds_checked() {
        let _ = PhysReg::int(32);
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert_eq!(PhysReg::int(7).to_string(), "r7");
        assert_eq!(PhysReg::fp(0).to_string(), "f0");
        assert_eq!(Dest::Pc.to_string(), "pc");
        assert_eq!(Addr(16).to_string(), "0x10");
        assert_eq!(Cycle(4).to_string(), "cy4");
        assert_eq!(AccessSize::B4.to_string(), "4B");
    }

    #[test]
    fn access_size_bytes() {
        assert_eq!(AccessSize::B1.bytes(), 1);
        assert_eq!(AccessSize::B2.bytes(), 2);
        assert_eq!(AccessSize::B4.bytes(), 4);
        assert_eq!(AccessSize::B8.bytes(), 8);
    }
}
