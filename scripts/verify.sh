#!/usr/bin/env bash
# Offline verification: the tier-1 gate plus lints. Everything here runs
# with no network access — the workspace has no external dependencies.
#
#   scripts/verify.sh            # build + tests + clippy + fmt + docs
#   NBL_THREADS=4 scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: cargo build --release =="
cargo build --release

echo "== tier 1: cargo test -q =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== scan-prop: chunked flag-plane scan vs scalar reference =="
cargo test -q -p nbl-trace --features scan-prop

echo "== codec-prop: tape artifact round-trip under random tapes =="
cargo test -q -p nbl-trace --features codec-prop

echo "== probe-prop: split probe/note_hit vs fused touch under all policies =="
cargo test -q -p nbl-core --features probe-prop

echo "== oracle-prop: abstract-domain soundness vs the engine on random tapes =="
cargo test -q -p nbl-oracle --features oracle-prop

echo "== warm arena: zero processor builds on warm replay (pinned counters) =="
cargo test -q -p nbl-sim --test warm_arena

echo "== artifact store: cross-process warm start + corruption recovery =="
cargo test -q -p nbl-sim --test artifact_store

echo "== clippy (warnings denied) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== nbl-analyze (repo-specific lints, findings denied) =="
cargo run --release -p nbl-analyze -- --deny --json results/json/analyze.json
python3 - results/json/analyze.json <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["kind"] == "analyze", d["kind"]
assert d["findings_total"] == len(d["findings"]) == 0, d["findings"]
assert d["files_scanned"] > 0, d["files_scanned"]
known = {"no-panic", "determinism", "exhaustiveness", "event-guard",
         "doc-coverage", "bad-allow", "allowlist"}
assert set(d["per_lint"]) <= known, d["per_lint"]
assert d["allowlist_entries"] == 0, "the allowlist only burns down"
print("analyze.json: shape OK")
EOF

echo "== rustfmt check =="
cargo fmt --all -- --check

echo "== rustdoc (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== smoke: parallel figures run =="
cargo run --release -p nbl-bench -- fig5 --quick --out /dev/null >/dev/null

echo "== smoke: replacement-policy sweep vs pinned LRU golden =="
replsens_dir="$(mktemp -d)"
trap 'rm -rf "$replsens_dir"' EXIT
cargo run --release -p nbl-bench -- replsens --quick \
  --csv "$replsens_dir" --json "$replsens_dir" --out /dev/null >/dev/null
# The LRU rows must be bit-identical to the pinned golden: the
# policy-parameterized tag array may not perturb the default policy.
grep '^lru,' "$replsens_dir/replsens.csv" \
  | diff -u scripts/golden/replsens_lru_quick.csv -
python3 - "$replsens_dir/replsens.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["kind"] == "replacement_sweep", d["kind"]
assert len(d["policies"]) >= 3, d["policies"]
assert len(d["configs"]) >= 3, d["configs"]
assert d["load_latencies"] == [1, 2, 3, 6, 10, 20], d["load_latencies"]
assert len(d["runs"]) == len(d["policies"]) * len(d["configs"]) * 6
print("replsens.json: shape OK")
EOF

echo "== smoke: processor-model sweep vs pinned single-issue golden =="
cargo run --release -p nbl-bench -- replaymodel --quick \
  --csv "$replsens_dir" --json "$replsens_dir" --out /dev/null >/dev/null
# The single-issue rows must be bit-identical to the pinned golden: the
# issue-policy engine may not perturb the default stalling pipeline.
grep '^single,' "$replsens_dir/replaymodel.csv" \
  | diff -u scripts/golden/replaymodel_single_quick.csv -
python3 - "$replsens_dir/replaymodel.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["kind"] == "model_sweep", d["kind"]
assert d["models"] == ["single", "dual", "replay"], d["models"]
assert len(d["configs"]) >= 3, d["configs"]
assert d["load_latencies"] == [1, 2, 3, 6, 10, 20], d["load_latencies"]
assert len(d["runs"]) == len(d["models"]) * len(d["configs"]) * 6
causes = {"fwd_fail", "bank_conflict", "dcache_rep", "dcache_miss"}
for r in d["runs"]:
    assert set(r["replays"]) == causes, r["replays"]
    for c in r["replays"].values():
        assert c["count"] >= 0 and c["stall_cycles"] >= 0, c
stall = sum(c["stall_cycles"]
            for r in d["runs"] if r["model"] == "replay"
            for c in r["replays"].values())
assert stall > 0, "replay model attributed no stall cycles"
for r in d["runs"]:
    if r["model"] == "single":
        assert all(c["count"] == 0 for c in r["replays"].values()), r
print("replaymodel.json: shape OK")
EOF

echo "== oracle gate: 72-cell cross-check, zero violations (--deny) =="
oracle_store="$replsens_dir/oracle-store"
# Twice against one verdict store: the first pass analyzes and persists,
# the second must answer every cell from the store (from_store all true)
# — exercising the content-addressed verdict codec cross-process.
cargo run --release -p nbl-oracle -- --deny \
  --csv "$replsens_dir/oracle_cli.csv" --json "$replsens_dir/oracle_cli.json" \
  --store "$oracle_store" >/dev/null
cargo run --release -p nbl-oracle -- --deny \
  --json "$replsens_dir/oracle_cli2.json" --store "$oracle_store" >/dev/null
python3 - "$replsens_dir/oracle_cli.json" "$replsens_dir/oracle_cli2.json" <<'EOF'
import json, sys
first = json.load(open(sys.argv[1]))
second = json.load(open(sys.argv[2]))
for d in (first, second):
    assert d["exhibit"] == "oracle", d["exhibit"]
    assert d["cells"] == len(d["rows"]) == 72, d["cells"]
    assert d["violations"] == 0, d["violations"]
    for r in d["rows"]:
        assert r["must_hit"] + r["must_miss"] + r["unknown"] == r["accesses"], r
        assert r["violations"] == 0, r
# Blocking LRU cells have a zero fill window: the analysis is exact there.
for r in first["rows"]:
    if r["policy"] == "lru" and r["hw"] == "mc=0":
        assert r["unknown"] == 0, ("blocking lru cell left unknowns", r)
assert not any(r["from_store"] for r in first["rows"]), "cold pass hit the store"
assert all(r["from_store"] for r in second["rows"]), "warm pass missed the store"
assert [ (r["bench"], r["geometry"], r["policy"], r["hw"], r["accesses"],
          r["must_hit"], r["must_miss"], r["unknown"]) for r in first["rows"] ] \
    == [ (r["bench"], r["geometry"], r["policy"], r["hw"], r["accesses"],
          r["must_hit"], r["must_miss"], r["unknown"]) for r in second["rows"] ]
print("oracle gate: 72 cells, 0 violations, verdict store warm-start OK")
EOF

echo "== smoke: oracle exhibit vs pinned LRU coverage golden =="
cargo run --release -p nbl-bench -- oracle --quick \
  --csv "$replsens_dir" --json "$replsens_dir" --out /dev/null >/dev/null
# The LRU coverage rows must be bit-identical to the pinned golden: a
# drift means either the tapes, the tag array, or the abstract domain
# changed semantics silently.
grep ',lru,' "$replsens_dir/oracle.csv" \
  | diff -u scripts/golden/oracle_lru_quick.csv -
python3 - "$replsens_dir/oracle.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["exhibit"] == "oracle", d["exhibit"]
assert d["cells"] == len(d["rows"]) == 80, d["cells"]
assert d["violations"] == 0, d["violations"]
for r in d["rows"]:
    assert r["must_hit"] + r["must_miss"] + r["unknown"] == r["accesses"], r
# Acceptance: on at least one benchmark the LRU analysis classifies >= 90%.
best = max(100.0 * (r["must_hit"] + r["must_miss"]) / r["accesses"]
           for r in d["rows"] if r["policy"] == "lru")
assert best >= 90.0, f"best lru coverage {best:.1f}% < 90%"
print("oracle.json: shape + coverage floor OK")
EOF

echo "== smoke: bench rail (fused/unfused/interpreted/disk-warm + artifact store) =="
bench_json="$replsens_dir/bench.json"
bench_store="$replsens_dir/store"
bench_date="$(git log -1 --format=%cs 2>/dev/null || echo unknown)"
# Two processes against one artifact store: the first populates the disk
# tier from scratch, the second must warm-start from it — tapes decoded
# instead of re-recorded, and still bit-identical. The second runs on a
# pinned 4-thread pool so the multi-thread sweep scheduling is exercised
# cross-process. The real commit date (not a placeholder) stamps both
# trajectory entries.
# NBL_ORACLE_CHECKED=1: the oracle gate above passed in this same
# verification run, so both trajectory entries record oracle_checked.
NBL_BENCH_JSON="$bench_json" NBL_BENCH_DATE="$bench_date" NBL_ORACLE_CHECKED=1 \
  cargo run --release -p nbl-bench -- bench --store "$bench_store" \
  --bench-reps 2 --out /dev/null >/dev/null
NBL_BENCH_JSON="$bench_json" NBL_BENCH_DATE="$bench_date" NBL_ORACLE_CHECKED=1 \
  NBL_THREADS=4 \
  cargo run --release -p nbl-bench -- bench --store "$bench_store" \
  --bench-reps 2 --out /dev/null >/dev/null
python3 - "$bench_json" "$bench_date" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
bench_date = sys.argv[2]
assert d["kind"] == "bench_sweep", d["kind"]
assert d["runs"] == len(d["benchmarks"]) * len(d["configs"]) * len(d["load_latencies"])
assert d["bit_identical"] is True, "a replay or store path diverged"
for key in ("cold_wall_s", "warm_wall_s", "unfused_wall_s", "interpreted_wall_s",
            "disk_warm_wall_s", "tape_scan_s", "mem_step_s",
            "speedup_warm_vs_interpreted",
            "speedup_fused_vs_unfused", "speedup_warm_vs_cold",
            "speedup_disk_warm_vs_cold"):
    assert d[key] > 0, key
# Fusion gate: fused replay must beat unfused at both pinned thread
# counts — fusion-aware row-span scheduling is what holds the 4-thread
# side, so a regression here is a scheduling or kernel defect.
assert d["fusion_regressed"] is False, \
    "fused replay lost to unfused at a pinned thread count"
for key in ("speedup_fused_vs_unfused_1t", "speedup_fused_vs_unfused_4t"):
    assert d[key] > 1.0, (key, d[key])
# Throughput floor: well below any observed machine (baseline ~2.7k/s
# before fusion) but high enough to catch a pipeline-wide regression.
assert d["warm_runs_per_sec"] >= 2000, d["warm_runs_per_sec"]
traj = d["trajectory"]
assert [e["date"] for e in traj] == [bench_date, bench_date], traj
assert bench_date != "unknown", "commit date must resolve"
for e in traj:
    for key in ("git", "threads", "reps", "warm_runs_per_sec", "disk_warm_wall_s",
                "speedup_disk_warm_vs_cold", "fusion_regressed", "bit_identical",
                "speedup_fused_vs_unfused_1t", "speedup_fused_vs_unfused_4t",
                "tape_scan_s", "mem_step_s", "oracle_checked"):
        assert key in e, key
    assert e["bit_identical"] is True, e
    assert e["fusion_regressed"] is False, e
    assert e["oracle_checked"] is True, e
# Acceptance floor: a fresh incremental process over the populated store
# must beat the cold (empty-store) pass by at least 1.5x. Entry 0 is the
# only run whose cold pass saw an empty store.
assert traj[0]["speedup_disk_warm_vs_cold"] >= 1.5, traj[0]
caches = d["caches"]
pairs = len(d["benchmarks"]) * len(d["load_latencies"])
store = caches["store"]
assert set(store) == {"tape_hits", "tape_misses", "tape_writes",
                      "result_hits", "result_misses", "result_writes",
                      "corruptions", "io_errors"}, store
# Second process: every tape pair decoded from the disk tier, none
# re-recorded; all 864 cells answered by the disk-warm phase.
assert caches["tape_cache"]["records"] == 0, caches["tape_cache"]
assert store["tape_hits"] == pairs, store
assert caches["tape_cache"]["records"] + store["tape_hits"] == pairs
assert store["result_hits"] >= d["runs"], store
assert store["corruptions"] == 0 and store["io_errors"] == 0, store
assert caches["tape_cache"]["hits"] > 0
print("bench.json: shape + floors + store telemetry + 2-entry trajectory OK")
EOF

echo "verify: OK"
