//! A shared compile cache: each `(benchmark, latency)` pair is compiled
//! exactly once per process and the
//! [`CompiledProgram`](nbl_trace::machine::CompiledProgram) shared by
//! reference, mirroring how the paper compiles one binary per latency and
//! replays it under every hardware configuration.
//!
//! The cache is safe to hit from many pool workers at once: each key maps
//! to a [`OnceLock`](std::sync::OnceLock) slot, so concurrent requests
//! for the same pair block
//! on the single in-flight compile instead of duplicating it. Keys include
//! a structural fingerprint of the IR, so two programs that share a name
//! (e.g. quick- and full-scale builds of one benchmark) never alias.

use nbl_core::hash::FastMap;
use nbl_sched::compile::{compile, CompileError};
use nbl_trace::ir::Program;
use nbl_trace::machine::CompiledProgram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Structural fingerprint of a program's IR:
/// [`crate::store::program_fingerprint`], the cross-process stable hash.
/// These keys never leave the process, but the same fingerprint is half
/// of a result artifact's content address in the disk tier, so the two
/// must not drift apart.
fn fingerprint(program: &Program) -> u64 {
    crate::store::program_fingerprint(program)
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    name: String,
    latency: u32,
    fingerprint: u64,
}

/// One slot per key: the `OnceLock` gives exactly-once compilation even
/// under concurrent first access.
type Slot = Arc<OnceLock<Result<Arc<CompiledProgram>, CompileError>>>;

/// Counter snapshot from a [`CompileCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from an already-compiled slot.
    pub hits: u64,
    /// Requests that ran the compiler.
    pub compiles: u64,
}

/// The cache itself. Use [`CompileCache::global`] to share compiles across
/// every sweep in the process, or a local instance for isolated tests.
#[derive(Debug, Default)]
pub struct CompileCache {
    slots: Mutex<FastMap<Key, Slot>>,
    hits: AtomicU64,
    compiles: AtomicU64,
}

impl CompileCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide cache shared by the sweep engine and the cached
    /// driver entry points.
    pub fn global() -> &'static CompileCache {
        static GLOBAL: OnceLock<CompileCache> = OnceLock::new();
        GLOBAL.get_or_init(CompileCache::new)
    }

    /// Returns the compiled form of `program` at `latency`, compiling on
    /// first request and sharing the result (by `Arc`) thereafter.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`]; a failed compile is cached too, so a
    /// bad `(benchmark, latency)` pair fails fast on every later request.
    pub fn get_or_compile(
        &self,
        program: &Program,
        latency: u32,
    ) -> Result<Arc<CompiledProgram>, CompileError> {
        let key = Key {
            name: program.name.clone(),
            latency,
            fingerprint: fingerprint(program),
        };
        let slot = {
            let mut map = self.slots.lock().expect("compile cache lock poisoned");
            Arc::clone(map.entry(key).or_default())
        };
        let mut compiled_here = false;
        let result = slot.get_or_init(|| {
            compiled_here = true;
            self.compiles.fetch_add(1, Ordering::Relaxed);
            compile(program, latency).map(Arc::new)
        });
        if !compiled_here {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        result.clone()
    }

    /// Current hit/compile counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct `(name, latency, fingerprint)` keys resident.
    pub fn len(&self) -> usize {
        self.slots
            .lock()
            .expect("compile cache lock poisoned")
            .len()
    }

    /// `true` if no program has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::JobPool;
    use nbl_trace::workloads::{build, Scale};

    #[test]
    fn compiles_each_pair_exactly_once() {
        let cache = CompileCache::new();
        let p = build("doduc", Scale::quick()).unwrap();
        let a = cache.get_or_compile(&p, 10).unwrap();
        let b = cache.get_or_compile(&p, 10).unwrap();
        let c = cache.get_or_compile(&p, 6).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same pair must share one compilation");
        assert!(
            !Arc::ptr_eq(&a, &c),
            "different latency is a different pair"
        );
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                compiles: 2
            }
        );
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn scale_variants_of_one_benchmark_do_not_alias() {
        let cache = CompileCache::new();
        let quick = build("eqntott", Scale::quick()).unwrap();
        let full = build("eqntott", Scale::full()).unwrap();
        let a = cache.get_or_compile(&quick, 10).unwrap();
        let b = cache.get_or_compile(&full, 10).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().compiles, 2);
    }

    #[test]
    fn concurrent_first_access_still_compiles_once() {
        // 16 workers race for 4 distinct (benchmark, latency) pairs; the
        // OnceLock slots must serialize each pair to a single compile.
        let cache = CompileCache::new();
        let doduc = build("doduc", Scale::quick()).unwrap();
        let eqntott = build("eqntott", Scale::quick()).unwrap();
        let programs = [&doduc, &eqntott];
        let latencies = [6u32, 10];
        let pool = JobPool::new(8);
        let out = pool.run(16, |i| {
            let p = programs[i % 2];
            let lat = latencies[(i / 2) % 2];
            cache.get_or_compile(p, lat).unwrap().load_latency
        });
        assert_eq!(out.len(), 16);
        let s = cache.stats();
        assert_eq!(s.compiles, 4, "one compile per distinct pair");
        assert_eq!(s.hits + s.compiles, 16);
    }
}
