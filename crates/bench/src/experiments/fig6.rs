//! Figure 6: histogram of in-flight misses and fetches for doduc, per
//! scheduled load latency, measured on the unrestricted configuration
//! with the baseline system.

use super::{program, RunScale, LATENCIES};
use nbl_sim::config::{HwConfig, SimConfig};
use nbl_sim::driver::run_program;
use nbl_sim::report;
use std::io::Write;

/// Prints the Fig. 6 table.
pub fn run(out: &mut dyn Write, scale: RunScale) {
    let p = program("doduc", scale);
    let base = SimConfig::baseline(HwConfig::NoRestrict);
    let mut results = Vec::new();
    for lat in LATENCIES {
        let r = run_program(&p, &base.clone().at_latency(lat)).expect("doduc compiles");
        results.push((lat, r));
    }
    let rows: Vec<(u32, &nbl_sim::driver::RunResult)> =
        results.iter().map(|(l, r)| (*l, r)).collect();
    let _ = writeln!(out, "== Figure 6: in-flight misses and fetches for doduc ==");
    let _ = writeln!(out, "{}", report::inflight_table("doduc", &rows));
}
