//! The abstract domain: one walk over a tape's memory operations,
//! classifying each as must-hit / must-miss / unknown under a given
//! `(geometry, replacement, window)`.
//!
//! # The model
//!
//! Tapes are single concrete paths, so every address is known; the only
//! nondeterminism the domain abstracts is *fill timing*. The engine's
//! discipline (see `Core::replay`) gives a hard bound: a miss finally
//! accessed at instruction `t` has installed its line before
//! instruction `t + window` issues (`window` = effective miss penalty
//! in cycles; the single-issue core burns at least one cycle per
//! instruction and drains due fills before every access). Within the
//! window the install may or may not have landed — every quantity below
//! is therefore an *interval* over possible commit positions.
//!
//! # Stamp characterization
//!
//! For LRU, a block is resident iff it is among the `W` (= ways) most
//! recently *stamped* distinct blocks of its set, where a stamp is a
//! hit touch or a fill install (write-around store misses stamp
//! nothing). Eviction takes the minimum-stamp way, so by induction the
//! resident set is exactly the top-`W` of the stamp order. FIFO is the
//! same with stamps = installs only. Tree-PLRU admits the weaker
//! published bound: the last `log2(W) + 1` distinct touched blocks are
//! guaranteed resident (its tree bits can protect an untouched block
//! forever, so eviction is never provable). Seeded-random is may-only:
//! a block is provably resident only while *no* other block possibly
//! installed into its set since it was last definitely present, and
//! provably absent only when it was never possibly installed.
//! Direct-mapped sets degenerate every policy to install order, which
//! the domain analyzes exactly.
//!
//! Per block the domain keeps its last *definite* stamp (position lower
//! bound + the instruction by which it committed) and its last
//! *possible* stamp/install positions (upper bounds). Must-hit then
//! needs a committed definite stamp with fewer than the policy
//! threshold of distinct other blocks possibly stamped after it;
//! must-miss needs either cold (never possibly installed) or at least
//! `W` distinct committed definite stamps after the block's last
//! possible stamp. Both walks are bounded; on overflow the access
//! degrades to [`Classification::Unknown`] — never to a wrong claim.

use crate::OracleConfig;
use nbl_core::hash::FastMap;
use nbl_core::tag_array::ReplacementKind;
use nbl_core::types::Addr;
use nbl_trace::TraceTape;

/// The oracle's verdict for one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classification {
    /// The access provably hits in the L1 tag array.
    MustHit,
    /// The access provably misses (cold, definitely evicted, or
    /// possibly in flight — an in-flight block is a secondary miss at
    /// the port, so "not resident in the tag array" suffices).
    MustMiss,
    /// The analysis cannot prove either way (typically an access within
    /// the fill window of a possible install of the same set).
    Unknown,
}

/// Aggregate classification counts for one analyzed cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Coverage {
    /// Total memory accesses classified.
    pub accesses: u64,
    /// Accesses proven to hit.
    pub must_hit: u64,
    /// Accesses proven to miss.
    pub must_miss: u64,
    /// Accesses left undecided.
    pub unknown: u64,
}

impl Coverage {
    /// Fraction of accesses classified (must-hit + must-miss), in
    /// `[0, 1]`; `1.0` for an empty cell.
    pub fn classified_fraction(&self) -> f64 {
        if self.accesses == 0 {
            return 1.0;
        }
        (self.must_hit + self.must_miss) as f64 / self.accesses as f64
    }
}

/// Result of one analyzer walk: per-access verdicts (indexed in
/// [`TraceTape::mem_ops`] order) plus the aggregate counts.
#[derive(Debug, Clone)]
pub struct OracleAnalysis {
    /// One verdict per memory operation, in tape order.
    pub classes: Vec<Classification>,
    /// Aggregate counts over `classes`.
    pub coverage: Coverage,
}

/// Per-policy classification rules (see the module docs).
#[derive(Debug, Clone, Copy)]
struct Rules {
    /// Must-hit threshold: the access hits if fewer than `m` distinct
    /// other blocks possibly stamped after the block's definite stamp.
    m: u32,
    /// Whether hits refresh the stamp order (LRU/PLRU) or only installs
    /// do (FIFO, and every policy when direct-mapped).
    stamps_on_hit: bool,
    /// Whether `W` distinct committed stamps after a block's last
    /// possible stamp prove eviction (LRU/FIFO; PLRU and random can
    /// protect a stale block forever).
    evict_proof: bool,
    /// Random replacement: must-hit only while no other block possibly
    /// installed into the set since the block was definitely present.
    any_victim: bool,
}

impl Rules {
    fn for_policy(kind: ReplacementKind, ways: u32) -> Rules {
        if ways == 1 {
            // Direct-mapped: every policy degenerates to install order.
            return Rules {
                m: 1,
                stamps_on_hit: false,
                evict_proof: true,
                any_victim: false,
            };
        }
        match kind {
            ReplacementKind::Lru => Rules {
                m: ways,
                stamps_on_hit: true,
                evict_proof: true,
                any_victim: false,
            },
            ReplacementKind::Fifo => Rules {
                m: ways,
                stamps_on_hit: false,
                evict_proof: true,
                any_victim: false,
            },
            ReplacementKind::TreePlru => Rules {
                // Reineke's PLRU bound: the last log2(W)+1 distinct
                // touched blocks are resident.
                m: ways.trailing_zeros() + 1,
                stamps_on_hit: true,
                evict_proof: false,
                any_victim: false,
            },
            ReplacementKind::Random { .. } => Rules {
                m: 1,
                stamps_on_hit: true,
                evict_proof: false,
                any_victim: true,
            },
        }
    }
}

/// Abstract state of one block (one record per distinct block ever
/// accessed; records persist so "no record" means provably cold).
#[derive(Debug, Clone)]
struct BlockRec {
    /// Instruction index of the last access to this block.
    last_access: u32,
    /// Latest *definite* stamp: (position lower bound, committed-by
    /// instruction). Present only when the block was definitely
    /// resident-or-installing at that stamp.
    def: Option<(u32, u32)>,
    /// Upper bound on the latest *possible* stamp position (policy
    /// stamps: touches + installs for LRU/PLRU, installs for FIFO).
    hi_stamp: Option<u32>,
    /// Upper bound on the latest *possible install* position.
    hi_install: Option<u32>,
    /// Whether the block was ever possibly installed; `false` means it
    /// was never resident (write-around stores don't install).
    ever_install: bool,
    /// Tombstone: the record was pruned from its set's recency list and
    /// its bounds folded into the set's `pruned_*` caps. Revived (with
    /// fresh bounds) on the block's next access.
    dropped: bool,
}

impl BlockRec {
    fn new(u: u32) -> BlockRec {
        BlockRec {
            last_access: u,
            def: None,
            hi_stamp: None,
            hi_install: None,
            ever_install: false,
            dropped: false,
        }
    }
}

/// Per-set state: the recency list (record indices ordered by
/// `last_access`, oldest first) and the caps folded in from pruned
/// records.
#[derive(Debug, Clone, Default)]
struct SetState {
    recency: Vec<u32>,
    /// Max possible-stamp position among pruned records: a must-hit
    /// proof with a definite stamp at or before this cap is refused
    /// (a dropped record might have stamped later).
    pruned_hi: Option<u32>,
    /// Same cap for possible installs (the random policy's walk).
    pruned_install_hi: Option<u32>,
}

fn max_opt(a: Option<u32>, b: u32) -> Option<u32> {
    Some(a.map_or(b, |a| a.max(b)))
}

fn max_opt2(a: Option<u32>, b: Option<u32>) -> Option<u32> {
    match b {
        Some(b) => max_opt(a, b),
        None => a,
    }
}

struct State {
    geometry: nbl_core::geometry::CacheGeometry,
    rules: Rules,
    ways: u32,
    window: u32,
    write_allocate: bool,
    walk_cap: usize,
    prune_len: usize,
    records: Vec<BlockRec>,
    map: FastMap<u64, u32>,
    sets: Vec<SetState>,
}

impl State {
    fn new(cfg: &OracleConfig) -> State {
        let ways = cfg.geometry.ways();
        let walk_cap = (8 * ways as usize) + (2 * cfg.window as usize) + 32;
        State {
            geometry: cfg.geometry,
            rules: Rules::for_policy(cfg.replacement, ways),
            ways,
            window: cfg.window,
            write_allocate: cfg.write_allocate,
            walk_cap,
            prune_len: (walk_cap * 2).max(64),
            records: Vec::new(),
            map: FastMap::default(),
            sets: vec![SetState::default(); cfg.geometry.num_sets() as usize],
        }
    }

    /// Classifies the access at instruction `u`, then folds it into the
    /// abstract state.
    fn step(&mut self, u: u32, is_store: bool, addr: Addr) -> Classification {
        let block = self.geometry.block_of(addr);
        let set = self.geometry.set_of_block(block) as usize;
        let installing = !is_store || self.write_allocate;
        let class = self.classify(block.0, set, u);
        self.update(block.0, set, u, installing, class);
        class
    }

    fn classify(&self, block: u64, set: usize, u: u32) -> Classification {
        let Some(&ri) = self.map.get(&block) else {
            return Classification::MustMiss; // cold: never accessed
        };
        let r = &self.records[ri as usize];
        if !r.ever_install {
            // Only ever written around the cache: provably not resident.
            return Classification::MustMiss;
        }
        if r.dropped {
            return Classification::Unknown; // bounds lost at prune time
        }
        let s = &self.sets[set];
        if let Some((lo, commit)) = r.def {
            let pruned_ok = if self.rules.any_victim {
                s.pruned_install_hi.is_none_or(|p| p < lo)
            } else {
                s.pruned_hi.is_none_or(|p| p < lo)
            };
            if u >= commit && pruned_ok {
                let proven = if self.rules.any_victim {
                    self.no_other_install_after(set, ri, lo) == Some(true)
                } else {
                    self.count_possible_after(set, ri, lo)
                        .is_some_and(|c| c < self.rules.m)
                };
                if proven {
                    return Classification::MustHit;
                }
            }
        }
        if self.rules.evict_proof {
            if let Some(hi) = r.hi_stamp {
                if self.count_definite_after(set, ri, hi, u) >= self.ways {
                    return Classification::MustMiss; // definitely evicted
                }
            }
        }
        Classification::Unknown
    }

    /// Distinct other blocks whose possible stamp position reaches `lo`
    /// or later; `None` when the bounded walk gave up. Early-exits at
    /// the must-hit threshold.
    fn count_possible_after(&self, set: usize, skip: u32, lo: u32) -> Option<u32> {
        let mut count = 0u32;
        let mut steps = 0usize;
        for &ri in self.sets[set].recency.iter().rev() {
            if ri == skip {
                continue;
            }
            let r = &self.records[ri as usize];
            // hi_stamp ≤ last_access + window, so no deeper entry (the
            // list is ordered by last_access) can reach `lo`.
            if (r.last_access as u64 + self.window as u64) < lo as u64 {
                break;
            }
            steps += 1;
            if steps > self.walk_cap {
                return None;
            }
            if r.hi_stamp.is_some_and(|h| h >= lo) {
                count += 1;
                if count >= self.rules.m {
                    return Some(count);
                }
            }
        }
        Some(count)
    }

    /// Distinct other blocks with a *definite, committed* stamp
    /// strictly after position `hi`, capped at `ways` (the eviction
    /// threshold). A truncated walk undercounts, which only loses
    /// precision, never soundness.
    fn count_definite_after(&self, set: usize, skip: u32, hi: u32, u: u32) -> u32 {
        let mut count = 0u32;
        let mut steps = 0usize;
        for &ri in self.sets[set].recency.iter().rev() {
            if ri == skip {
                continue;
            }
            let r = &self.records[ri as usize];
            // A definite stamp's position lower bound is an access
            // index, so def.0 ≤ last_access ≤ hi rules the rest out.
            if r.last_access <= hi {
                break;
            }
            steps += 1;
            if steps > self.walk_cap {
                break;
            }
            if let Some((lo, commit)) = r.def {
                if lo > hi && u >= commit {
                    count += 1;
                    if count >= self.ways {
                        return count;
                    }
                }
            }
        }
        count
    }

    /// `Some(true)` when no other block possibly installed into the set
    /// at position `lo` or later; `None` when the walk gave up.
    fn no_other_install_after(&self, set: usize, skip: u32, lo: u32) -> Option<bool> {
        let mut steps = 0usize;
        for &ri in self.sets[set].recency.iter().rev() {
            if ri == skip {
                continue;
            }
            let r = &self.records[ri as usize];
            if (r.last_access as u64 + self.window as u64) < lo as u64 {
                break;
            }
            steps += 1;
            if steps > self.walk_cap {
                return None;
            }
            if r.hi_install.is_some_and(|h| h >= lo) {
                return Some(false);
            }
        }
        Some(true)
    }

    fn update(&mut self, block: u64, set: usize, u: u32, installing: bool, class: Classification) {
        let inst_hi = u.saturating_add(self.window);
        let ri = if let Some(&ri) = self.map.get(&block) {
            let r = &mut self.records[ri as usize];
            if r.dropped {
                // Revive with fresh bounds; the pre-drop possibilities
                // live on in the set's pruned caps.
                r.dropped = false;
                r.def = None;
                r.hi_stamp = None;
                r.hi_install = None;
            }
            ri
        } else {
            let ri = self.records.len() as u32;
            self.records.push(BlockRec::new(u));
            self.map.insert(block, ri);
            ri
        };
        let stamps_on_hit = self.rules.stamps_on_hit;
        let r = &mut self.records[ri as usize];
        r.last_access = u;
        match class {
            Classification::MustHit => {
                if stamps_on_hit {
                    // A definite touch: position exactly `u`, committed
                    // immediately.
                    r.def = Some((u, u));
                    r.hi_stamp = max_opt(r.hi_stamp, u);
                }
            }
            Classification::MustMiss => {
                if installing {
                    // A definite install: position in [u, u+window],
                    // committed by `inst_hi`.
                    r.def = Some((u, inst_hi));
                    r.hi_stamp = max_opt(r.hi_stamp, inst_hi);
                    r.hi_install = max_opt(r.hi_install, inst_hi);
                    r.ever_install = true;
                }
                // Write-around store miss: no tag effect at all.
            }
            Classification::Unknown => {
                if installing {
                    r.hi_stamp = max_opt(r.hi_stamp, inst_hi);
                    r.hi_install = max_opt(r.hi_install, inst_hi);
                    r.ever_install = true;
                    if stamps_on_hit {
                        // Either way the block stamps: a hit touches at
                        // `u`, a miss installs by `inst_hi` — so a
                        // definite stamp at position ≥ u exists and has
                        // committed by `inst_hi`. This is the exact
                        // refinement that keeps deterministic tapes
                        // near-fully classified.
                        r.def = Some((u, inst_hi));
                    }
                } else if stamps_on_hit {
                    // Write-around store of unknown outcome: a hit
                    // would touch at `u`, a miss stamps nothing.
                    r.hi_stamp = max_opt(r.hi_stamp, u);
                }
            }
        }
        // Keep the set's recency list ordered by last_access.
        let s = &mut self.sets[set];
        if let Some(p) = s.recency.iter().rposition(|&x| x == ri) {
            s.recency.remove(p);
        }
        s.recency.push(ri);
        while s.recency.len() > self.prune_len {
            let old = s.recency.remove(0);
            let r = &mut self.records[old as usize];
            s.pruned_hi = max_opt2(s.pruned_hi, r.hi_stamp);
            s.pruned_install_hi = max_opt2(s.pruned_install_hi, r.hi_install);
            r.dropped = true;
            r.def = None;
            r.hi_stamp = None;
            r.hi_install = None;
        }
    }
}

/// Walks `tape` once and classifies every memory access under `cfg`.
/// Deterministic and linear-ish in tape length (walks are bounded by a
/// cap derived from associativity and window).
pub fn analyze_tape(tape: &TraceTape, cfg: &OracleConfig) -> OracleAnalysis {
    let mut st = State::new(cfg);
    let mut classes = Vec::with_capacity((tape.loads() + tape.stores()) as usize);
    let mut coverage = Coverage::default();
    for op in tape.mem_ops() {
        let c = st.step(op.index as u32, op.is_store, op.addr);
        coverage.accesses += 1;
        match c {
            Classification::MustHit => coverage.must_hit += 1,
            Classification::MustMiss => coverage.must_miss += 1,
            Classification::Unknown => coverage.unknown += 1,
        }
        classes.push(c);
    }
    OracleAnalysis { classes, coverage }
}
