//! Figure 14 (table): explicit, implicit and hybrid MSHR target layouts
//! for doduc at load latency 10 — MCPI, ratio to the unrestricted cache,
//! and the hardware cost in bits of one MSHR under each layout.
//!
//! Like the paper's table, the hardware has unlimited MSHR entries and the
//! rows/columns vary only the per-MSHR target-field structure:
//! rows = sub-blocks per line, columns = misses per sub-block.

use super::{engine, program, ExhibitError, RunScale};
use nbl_core::geometry::CacheGeometry;
use nbl_core::mshr::cost::MshrCostModel;
use nbl_core::mshr::TargetPolicy;
use nbl_sim::config::{HwConfig, SimConfig};
use nbl_trace::ir::Program;
use std::io::Write;

/// The (sub-blocks, misses-per-sub-block) grid of the paper's Fig. 14:
/// the top row is fully explicit, the left column fully implicit, the
/// diagonal hybrid.
pub const GRID: [(u32, u32); 6] = [(1, 1), (1, 2), (1, 4), (2, 1), (2, 2), (4, 1)];

/// The near-implicit 8-sub-block point the paper also reports.
pub const IMPLICIT_8: (u32, u32) = (8, 1);

fn policy_for(sub: u32, misses: u32) -> TargetPolicy {
    if misses == 1 && sub > 1 {
        TargetPolicy::implicit_sub_blocks(sub)
    } else if sub == 1 {
        TargetPolicy::explicit(nbl_core::limit::Limit::Finite(misses))
    } else {
        TargetPolicy::hybrid(sub, misses)
    }
}

/// Prints the Fig. 14 table.
pub fn run(out: &mut dyn Write, scale: RunScale) -> Result<(), ExhibitError> {
    let p = program("doduc", scale)?;
    let geom = CacheGeometry::baseline();
    let costs = MshrCostModel::default();

    // One pool invocation: the unrestricted reference plus every layout.
    let points: Vec<(u32, u32, TargetPolicy)> = GRID
        .iter()
        .copied()
        .chain(std::iter::once(IMPLICIT_8))
        .map(|(sub, misses)| (sub, misses, policy_for(sub, misses)))
        .collect();
    let mut jobs: Vec<(&Program, SimConfig)> =
        vec![(&p, SimConfig::baseline(HwConfig::NoRestrict))];
    jobs.extend(
        points
            .iter()
            .map(|(_, _, pol)| (&p, SimConfig::baseline(HwConfig::Targets(*pol)))),
    );
    let results = engine()
        .run_many(&jobs)
        .map_err(|e| ExhibitError::new("doduc @ Fig. 14 target layouts", e))?;
    let unrestricted = results[0].mcpi;

    let _ = writeln!(
        out,
        "== Figure 14: explicit, implicit, and hybrid MSHRs for doduc =="
    );
    let _ = writeln!(
        out,
        "{:>12} {:>14} {:>8} {:>6} {:>10}",
        "sub-blocks", "misses/sub-bl", "MCPI", "ratio", "bits/MSHR"
    );
    for ((sub, misses, policy), r) in points.iter().zip(&results[1..]) {
        let bits = costs
            .register_mshr(*policy, &geom)
            .map(|c| c.bits.to_string())
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "{:>12} {:>14} {:>8.3} {:>6.2} {:>10}",
            sub,
            misses,
            r.mcpi,
            r.mcpi / unrestricted,
            bits
        );
    }
    let _ = writeln!(
        out,
        "{:>12} {:>14} {:>8.3} {:>6.2} {:>10}",
        "-", "inf", unrestricted, 1.0, "-"
    );
    let _ = writeln!(out);
    Ok(())
}
