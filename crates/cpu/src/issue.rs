//! The policy-parameterized issue engine every processor model shares.
//!
//! [`Processor`](crate::pipeline::Processor) and
//! [`DualIssueProcessor`](crate::dual::DualIssueProcessor) used to carry
//! their own copies of the fetch/hazard/issue/retire plumbing; both are
//! now thin wrappers over one [`IssueEngine`], selected by
//! [`IssuePolicy`] enum dispatch (the same seam shape as the tag arrays'
//! `ReplacementPolicy`). The third policy, [`IssuePolicy::ReplayCause`],
//! models a modern speculative load pipeline: loads issue without waiting
//! for hit/miss resolution and are *replayed* on a prioritized set of
//! causes (XiangShan's `LoadReplayCauses` design space) instead of
//! stalling the whole pipeline, with per-cause counts and stall cycles
//! accumulated into a [`ReplayAttribution`].
//!
//! Both the interpreted ([`IssueEngine::push`]) and tape-replay
//! ([`IssueEngine::run_tape`]) rails dispatch on the same policy, so a
//! model is defined once and drives every rail identically.

use crate::core_engine::{Core, EngineConfig, EngineError};
use crate::stats::{CpuStats, InFlightSampler, ReplayAttribution};
use nbl_core::cache::LockupFreeCache;
use nbl_core::inst::DynInst;
use nbl_core::types::Cycle;
use nbl_mem::event::ReplayCause;
use nbl_mem::system::MemorySystem;
use nbl_trace::tape::{barrier_index, TraceTape};

/// Which issue discipline the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IssuePolicy {
    /// The paper's §3.1 machine: one instruction per cycle, strictly in
    /// order, stalling on every hazard.
    #[default]
    SingleInOrder,
    /// The §6 machine: up to two instructions per cycle, one memory port,
    /// leader-never-waits-for-follower pairing.
    DualInOrder,
    /// Single-issue width, but loads issue speculatively and are replayed
    /// on XiangShan-style causes (forward-fail, NACK, bank conflict)
    /// instead of the access stalling in place; real misses complete out
    /// of order and their cost is attributed to the consumer.
    ReplayCause,
}

/// The shared issue engine: a [`Core`] (scoreboard + clock + stats +
/// memory port) plus the policy-specific issue state (the dual pairing
/// buffer, the replay attribution counters).
#[derive(Debug, Clone)]
pub struct IssueEngine {
    core: Core,
    policy: IssuePolicy,
    /// Dual-issue pairing buffer: the not-yet-issued leader candidate.
    slot: Option<DynInst>,
    /// Cycles in which two instructions issued together (dual only).
    pairs_issued: u64,
    /// Per-cause replay accounting (replaying model only).
    attribution: ReplayAttribution,
}

impl IssueEngine {
    /// Creates an engine at cycle zero with a cold cache.
    pub fn new(config: EngineConfig, policy: IssuePolicy) -> IssueEngine {
        IssueEngine {
            core: Core::new(config),
            policy,
            slot: None,
            pairs_issued: 0,
            attribution: ReplayAttribution::default(),
        }
    }

    /// The issue discipline this engine runs.
    pub fn policy(&self) -> IssuePolicy {
        self.policy
    }

    /// Feeds the next instruction of the in-order stream.
    ///
    /// # Errors
    ///
    /// [`EngineError`] if the engine had to wait on a fill that cannot
    /// arrive (a model invariant violation).
    pub fn push(&mut self, inst: DynInst) -> Result<(), EngineError> {
        match self.policy {
            IssuePolicy::SingleInOrder => {
                self.core.drain_fills();
                self.core.resolve_hazards(&inst)?;
                self.core.execute(&inst)?;
                self.core.tick();
                Ok(())
            }
            IssuePolicy::DualInOrder => self.push_dual(inst),
            IssuePolicy::ReplayCause => {
                self.core.drain_fills();
                let before = self.core.now();
                self.core.resolve_hazards(&inst)?;
                // A hazard wait is time spent waiting for a fill — the
                // consumer-side cost of a miss completing out of order.
                self.attribution.stall_cycles[ReplayCause::DcacheMiss.index()] +=
                    self.core.now().since(before);
                self.core
                    .execute_speculative(&inst, &mut self.attribution)?;
                self.core.tick();
                Ok(())
            }
        }
    }

    fn push_dual(&mut self, inst: DynInst) -> Result<(), EngineError> {
        let Some(leader) = self.slot.take() else {
            self.slot = Some(inst);
            return Ok(());
        };
        self.issue_leader(&leader)?;
        if self.can_coissue(&leader, &inst) {
            // Same cycle: the follower issues alongside the leader.
            self.core.execute(&inst)?;
            self.pairs_issued += 1;
            self.core.tick();
        } else {
            self.core.tick();
            self.slot = Some(inst);
        }
        Ok(())
    }

    /// Runs an entire instruction stream (still call
    /// [`IssueEngine::finish`] afterwards).
    ///
    /// # Errors
    ///
    /// The first [`EngineError`] any instruction hits.
    pub fn run<I>(&mut self, stream: I) -> Result<(), EngineError>
    where
        I: IntoIterator<Item = DynInst>,
    {
        for inst in stream {
            self.push(inst)?;
        }
        Ok(())
    }

    /// Replays a recorded tape with timing and stats bit-identical to
    /// pushing the equivalent stream, driven straight off the tape's
    /// packed arrays through the policy's own replay loop.
    ///
    /// # Errors
    ///
    /// The first [`EngineError`] any entry hits.
    pub fn run_tape(&mut self, tape: &TraceTape) -> Result<(), EngineError> {
        match self.policy {
            IssuePolicy::SingleInOrder => self.core.replay(tape),
            IssuePolicy::DualInOrder => self.run_tape_dual(tape),
            IssuePolicy::ReplayCause => self.run_tape_replaying(tape),
        }
    }

    /// The dual pairing loop over packed tape entries: leader/follower
    /// conflict and port checks use the byte-compare forms
    /// ([`TraceTape::conflicts`], [`TraceTape::is_mem`]) and only a
    /// trailing unpaired entry is ever reconstructed as a [`DynInst`] (it
    /// lands in the pairing buffer for [`IssueEngine::finish`], exactly as
    /// a pushed stream would).
    fn run_tape_dual(&mut self, tape: &TraceTape) -> Result<(), EngineError> {
        if self.slot.is_some() {
            // A partial stream was already pushed; splicing indices would
            // desynchronize the pairing, so fall back to the push path.
            return self.run(tape.iter());
        }
        let n = tape.len();
        let mut i = 0;
        while i < n {
            if i + 1 == n {
                // Unpaired tail: buffered, flushed by `finish`.
                self.slot = Some(tape.get(i));
                break;
            }
            self.core.drain_fills();
            self.core.replay_hazards(tape, i)?;
            self.core.replay_execute(tape, i)?;
            let coissue = !(tape.conflicts(i, i + 1) || tape.is_mem(i) && tape.is_mem(i + 1)) && {
                // Fills that completed during the leader's stalls may
                // have freed the follower's registers this very cycle.
                self.core.drain_fills();
                self.core.replay_hazards_clear(tape, i + 1)
            };
            if coissue {
                self.core.replay_execute(tape, i + 1)?;
                self.pairs_issued += 1;
                self.core.tick();
                i += 2;
            } else {
                self.core.tick();
                i += 1;
            }
        }
        Ok(())
    }

    /// The replaying model's barrier loop: the same gap bulk-issue and
    /// quiescent fast path as [`Core::replay`] (non-barrier entries never
    /// touch the memory system or the replay classifier, and a quiescent
    /// engine has no pending register to attribute a wait to), with the
    /// speculative execute and hazard-wait attribution at the barriers.
    fn run_tape_replaying(&mut self, tape: &TraceTape) -> Result<(), EngineError> {
        let barriers = tape.barriers();
        let n = tape.len();
        let mut i = 0; // next instruction index to account for
        let mut j = 0; // next barrier to process
        while j < barriers.len() {
            if self.core.memory().next_event().is_none() {
                j = tape.next_mem_barrier(j);
                let next = barriers.get(j).map_or(n, |&b| barrier_index(b));
                if next > i {
                    self.core.issue_free_run(next - i);
                    i = next;
                }
                let Some(&b) = barriers.get(j) else { break };
                self.core.replay_execute_speculative(
                    tape,
                    barrier_index(b),
                    &mut self.attribution,
                )?;
                self.core.tick();
                i = barrier_index(b) + 1;
                j += 1;
            } else {
                let b = barrier_index(barriers[j]);
                if b > i {
                    self.core.issue_free_run(b - i);
                }
                self.core.drain_fills();
                let before = self.core.now();
                self.core.replay_hazards(tape, b)?;
                self.attribution.stall_cycles[ReplayCause::DcacheMiss.index()] +=
                    self.core.now().since(before);
                self.core
                    .replay_execute_speculative(tape, b, &mut self.attribution)?;
                self.core.tick();
                i = b + 1;
                j += 1;
            }
        }
        if i < n {
            self.core.issue_free_run(n - i);
        }
        Ok(())
    }

    fn issue_leader(&mut self, leader: &DynInst) -> Result<(), EngineError> {
        self.core.drain_fills();
        self.core.resolve_hazards(leader)?;
        self.core.execute(leader)
    }

    fn can_coissue(&mut self, leader: &DynInst, follower: &DynInst) -> bool {
        if leader.conflicts_with(follower) {
            return false;
        }
        if leader.is_mem() && follower.is_mem() {
            return false;
        }
        // Fills that completed during the leader's stalls may have freed the
        // follower's registers this very cycle.
        self.core.drain_fills();
        self.core.hazards_clear(follower)
    }

    /// Flushes the dual pairing buffer (a no-op for the single-width
    /// policies, which never buffer) and finalizes the run.
    ///
    /// # Errors
    ///
    /// [`EngineError`] if issuing the last buffered instruction failed.
    pub fn finish(&mut self) -> Result<(), EngineError> {
        if let Some(last) = self.slot.take() {
            self.issue_leader(&last)?;
            self.core.tick();
        }
        self.core.finish();
        Ok(())
    }

    /// Returns the engine to its freshly-built state (cold cache, cycle
    /// zero, zero counters, empty pairing buffer) while keeping internal
    /// allocations, so a pooled worker can be reused run-to-run without
    /// touching the heap. Results after a reset are bit-identical to a new
    /// engine's.
    pub fn reset(&mut self) {
        self.core.reset();
        self.slot = None;
        self.pairs_issued = 0;
        self.attribution = ReplayAttribution::default();
    }

    /// Mutable access to the underlying core, for the fused multi-config
    /// replay entry point ([`Core::replay_fused`] — valid only for
    /// [`IssuePolicy::SingleInOrder`] engines).
    pub fn core_mut(&mut self) -> &mut Core {
        &mut self.core
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.core.now()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CpuStats {
        self.core.stats()
    }

    /// Per-cause replay accounting (all zero outside
    /// [`IssuePolicy::ReplayCause`]).
    pub fn attribution(&self) -> &ReplayAttribution {
        &self.attribution
    }

    /// Number of cycles in which two instructions issued together.
    pub fn pairs_issued(&self) -> u64 {
        self.pairs_issued
    }

    /// Memory CPI relative to a perfect-cache cycle count of the same
    /// instruction stream: `(cycles − perfect_cycles) / instructions`.
    pub fn mcpi_against(&self, perfect_cycles: Cycle) -> f64 {
        let n = self.core.stats().instructions;
        if n == 0 {
            return 0.0;
        }
        (self.now().0.saturating_sub(perfect_cycles.0)) as f64 / n as f64
    }

    /// The in-flight occupancy sampler.
    pub fn sampler(&self) -> &InFlightSampler {
        self.core.sampler()
    }

    /// The data cache.
    pub fn cache(&self) -> &LockupFreeCache {
        self.core.cache()
    }

    /// The memory system behind the port.
    pub fn memory(&self) -> &MemorySystem {
        self.core.memory()
    }

    /// Starts recording miss-lifecycle events (see [`nbl_mem::event`]).
    pub fn enable_mem_tracing(&mut self, ring_capacity: usize) {
        self.core.enable_mem_tracing(ring_capacity);
    }

    /// Stops tracing and returns the recorded trace, if any.
    pub fn take_mem_trace(&mut self) -> Option<nbl_mem::event::MemTrace> {
        self.core.take_mem_trace()
    }

    /// Starts the per-access outcome tap (the static cache oracle's
    /// cross-check probe): one [`nbl_mem::AccessOutcome`] per
    /// finally-resolved memory access, in program order.
    pub fn enable_outcome_tap(&mut self) {
        self.core.enable_outcome_tap();
    }

    /// Stops the outcome tap and returns the recorded outcomes, if any.
    pub fn take_outcomes(&mut self) -> Option<Vec<nbl_mem::AccessOutcome>> {
        self.core.take_outcomes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbl_core::cache::CacheConfig;
    use nbl_core::limit::Limit;
    use nbl_core::mshr::inverted::InvertedConfig;
    use nbl_core::mshr::{MshrConfig, RegisterFileConfig, TargetPolicy};
    use nbl_core::types::{Addr, LoadFormat, PhysReg};

    fn unrestricted() -> EngineConfig {
        EngineConfig::with_cache(CacheConfig::baseline(MshrConfig::Inverted(
            InvertedConfig::typical(),
        )))
    }

    fn mc1() -> EngineConfig {
        EngineConfig::with_cache(CacheConfig::baseline(MshrConfig::Register(
            RegisterFileConfig {
                entries: Limit::Finite(1),
                targets: TargetPolicy::explicit(Limit::Finite(1)),
                max_outstanding_misses: Limit::Finite(1),
                max_fetches_per_set: Limit::Unlimited,
            },
        )))
    }

    fn engine(config: EngineConfig, policy: IssuePolicy) -> IssueEngine {
        IssueEngine::new(config, policy)
    }

    /// ld A; use A — the use's wait is attributed to the miss cause.
    #[test]
    fn replaying_model_attributes_consumer_wait_to_dcache_miss() {
        let mut e = engine(unrestricted(), IssuePolicy::ReplayCause);
        e.push(DynInst::load(
            Addr(0x1000),
            PhysReg::int(1),
            LoadFormat::WORD,
        ))
        .unwrap();
        e.push(DynInst::alu(PhysReg::int(2), [Some(PhysReg::int(1)), None]))
            .unwrap();
        e.finish().unwrap();
        let attr = *e.attribution();
        assert_eq!(attr.count(ReplayCause::DcacheMiss), 1);
        assert_eq!(attr.count(ReplayCause::BankConflict), 0);
        assert_eq!(attr.count(ReplayCause::ForwardFail), 0);
        assert_eq!(attr.count(ReplayCause::DcacheReplay), 0);
        assert_eq!(
            attr.stalls(ReplayCause::DcacheMiss),
            e.stats().data_dep_stall_cycles
        );
        assert_eq!(e.stats().data_dep_stall_cycles, 15);
    }

    /// Back-to-back loads to the same bank: the second replays exactly once.
    #[test]
    fn bank_conflict_fires_once_per_triggering_access() {
        let mut e = engine(unrestricted(), IssuePolicy::ReplayCause);
        // Same bank (bits [3..6] of the address), different lines and
        // sets. Warm both lines first so the conflicting pair are pure
        // hits.
        let a = Addr(0x0000);
        let b = Addr(0x0440);
        e.push(DynInst::load(a, PhysReg::int(1), LoadFormat::WORD))
            .unwrap();
        for _ in 0..40 {
            e.push(DynInst::alu(PhysReg::int(9), [None, None])).unwrap();
        }
        e.push(DynInst::load(b, PhysReg::int(2), LoadFormat::WORD))
            .unwrap();
        for _ in 0..40 {
            e.push(DynInst::alu(PhysReg::int(9), [None, None])).unwrap();
        }
        let before = *e.attribution();
        e.push(DynInst::load(a, PhysReg::int(3), LoadFormat::WORD))
            .unwrap();
        e.push(DynInst::load(b, PhysReg::int(4), LoadFormat::WORD))
            .unwrap();
        e.finish().unwrap();
        let attr = *e.attribution();
        assert_eq!(
            attr.count(ReplayCause::BankConflict) - before.count(ReplayCause::BankConflict),
            1,
            "the second back-to-back same-bank load replays exactly once"
        );
        assert_eq!(
            attr.stalls(ReplayCause::BankConflict) - before.stalls(ReplayCause::BankConflict),
            2,
            "a bank conflict costs the fast replay bubble"
        );
    }

    /// A load overlapping a just-issued store replays once for forward-fail.
    #[test]
    fn forward_fail_fires_once_per_triggering_access() {
        let mut e = engine(unrestricted(), IssuePolicy::ReplayCause);
        // Warm the line so the load would otherwise be a pure hit.
        e.push(DynInst::load(
            Addr(0x100),
            PhysReg::int(1),
            LoadFormat::WORD,
        ))
        .unwrap();
        for _ in 0..40 {
            e.push(DynInst::alu(PhysReg::int(9), [None, None])).unwrap();
        }
        e.push(DynInst::store(Addr(0x100), Some(PhysReg::int(9))))
            .unwrap();
        e.push(DynInst::load(
            Addr(0x104),
            PhysReg::int(2),
            LoadFormat::WORD,
        ))
        .unwrap();
        e.finish().unwrap();
        let attr = *e.attribution();
        assert_eq!(attr.count(ReplayCause::ForwardFail), 1);
        assert_eq!(
            attr.stalls(ReplayCause::ForwardFail),
            4,
            "forwarding failure costs the slow replay bubble"
        );
        assert_eq!(
            attr.count(ReplayCause::BankConflict),
            0,
            "the replay wins priority"
        );
    }

    /// mc=1: the second concurrent miss is NACKed and replays, and after a
    /// second NACK the engine waits for the fill (still attributed to the
    /// NACK cause).
    #[test]
    fn dcache_replay_nack_fires_once_then_waits() {
        let mut e = engine(mc1(), IssuePolicy::ReplayCause);
        e.push(DynInst::load(
            Addr(0x1000),
            PhysReg::int(1),
            LoadFormat::WORD,
        ))
        .unwrap();
        e.push(DynInst::load(
            Addr(0x2000),
            PhysReg::int(2),
            LoadFormat::WORD,
        ))
        .unwrap();
        e.finish().unwrap();
        let attr = *e.attribution();
        assert_eq!(attr.count(ReplayCause::DcacheReplay), 1);
        assert!(
            attr.stalls(ReplayCause::DcacheReplay) > REPLAY_FAST_FOR_TEST,
            "the post-NACK fill wait lands on the NACK cause: {attr:?}"
        );
        assert_eq!(e.stats().structural_stall_misses, 1);
    }

    const REPLAY_FAST_FOR_TEST: u64 = 2;

    /// The attributed stall cycles partition the non-blocking stall total.
    #[test]
    fn attribution_partitions_the_stall_total() {
        let stream: Vec<DynInst> = (0..60u64)
            .flat_map(|i| {
                [
                    DynInst::load(Addr(i * 520), PhysReg::int((i % 8) as u8), LoadFormat::WORD),
                    DynInst::alu(
                        PhysReg::int(10 + (i % 8) as u8),
                        [Some(PhysReg::int((i % 8) as u8)), None],
                    ),
                    DynInst::store(Addr(i * 520 + 4), Some(PhysReg::int(10 + (i % 8) as u8))),
                ]
            })
            .collect();
        for config in [unrestricted(), mc1()] {
            let mut e = engine(config, IssuePolicy::ReplayCause);
            e.run(stream.iter().copied()).unwrap();
            e.finish().unwrap();
            let attr = *e.attribution();
            assert_eq!(
                attr.total_stall_cycles(),
                e.stats().data_dep_stall_cycles + e.stats().structural_stall_cycles,
                "per-cause cycles must partition the non-blocking stalls"
            );
            assert!(attr.count(ReplayCause::DcacheMiss) > 0);
        }
    }

    /// The replaying model's tape rail is bit-identical to its push rail.
    #[test]
    fn replaying_tape_matches_pushed_stream() {
        let stream: Vec<DynInst> = (0..60u64)
            .flat_map(|i| {
                [
                    DynInst::load(Addr(i * 520), PhysReg::int((i % 8) as u8), LoadFormat::WORD),
                    DynInst::alu(
                        PhysReg::int(10 + (i % 8) as u8),
                        [Some(PhysReg::int((i % 8) as u8)), None],
                    ),
                    DynInst::alu(PhysReg::int(20), [None, None]),
                    DynInst::store(Addr(i * 520 + 4), Some(PhysReg::int(10 + (i % 8) as u8))),
                ]
            })
            .collect();
        let mut tape = TraceTape::with_capacity("t", 1, 0, stream.len());
        for inst in &stream {
            tape.push(*inst);
        }
        for config in [unrestricted(), mc1()] {
            let mut pushed = engine(config.clone(), IssuePolicy::ReplayCause);
            pushed.run(stream.iter().copied()).unwrap();
            pushed.finish().unwrap();
            let mut replayed = engine(config, IssuePolicy::ReplayCause);
            replayed.run_tape(&tape).unwrap();
            replayed.finish().unwrap();
            assert_eq!(replayed.now(), pushed.now());
            assert_eq!(replayed.stats(), pushed.stats());
            assert_eq!(replayed.attribution(), pushed.attribution());
            assert_eq!(replayed.cache().counters(), pushed.cache().counters());
        }
    }

    /// The replaying model emits `LoadReplayed` through the lifecycle
    /// tracer, mirroring the engine-side attribution counts.
    #[test]
    fn replay_events_mirror_attribution() {
        let mut e = engine(mc1(), IssuePolicy::ReplayCause);
        e.enable_mem_tracing(64);
        e.push(DynInst::load(
            Addr(0x1000),
            PhysReg::int(1),
            LoadFormat::WORD,
        ))
        .unwrap();
        e.push(DynInst::load(
            Addr(0x2000),
            PhysReg::int(2),
            LoadFormat::WORD,
        ))
        .unwrap();
        e.finish().unwrap();
        let attr = *e.attribution();
        let trace = e.take_mem_trace().expect("tracing was enabled");
        for cause in ReplayCause::ALL {
            assert_eq!(
                trace.stats.replays[cause.index()],
                attr.count(cause),
                "event stream and attribution disagree on {cause:?}"
            );
        }
    }
}
