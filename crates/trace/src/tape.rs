//! Record-once / replay-many trace tapes.
//!
//! Every figure in the paper sweeps one `(benchmark, scheduled load
//! latency)` program across many MSHR/hardware configurations, and the
//! dynamic instruction stream is **identical at every grid point** — the
//! hardware configuration changes how the stream is timed, never what it
//! contains. Re-walking the [`CompiledProgram`] script through
//! [`crate::exec::Executor`] for each configuration therefore repeats the
//! same work: loop control, IR dispatch, pattern-state updates (including
//! an `i128` modulus per strided address and a Sattolo permutation build
//! per chase pattern) and a [`DynInst`] construction per instruction.
//!
//! A [`TraceTape`] flattens that stream once into a struct-of-arrays
//! encoding that replays with nothing but sequential array reads:
//!
//! | array     | type       | bytes/inst | contents                        |
//! |-----------|------------|------------|---------------------------------|
//! | `kinds`   | `TapeKind` | 1          | Alu / Branch / Load / Store     |
//! | `dsts`    | `u8`       | 1          | dense register index, `0xff` = none |
//! | `srcs`    | `[u8; 2]`  | 2          | dense register indices, `0xff` = none |
//! | `addrs`   | `u64`      | 8          | effective address (mem ops only) |
//! | `formats` | `u8`       | 1          | packed [`LoadFormat`] (loads only) |
//!
//! plus a side index of **barrier** entries (`u32` each): the memory
//! operations and the entries that read or rewrite a register whose most
//! recent writer is a load. Only a barrier can stall or touch the memory
//! system — a register is pending only while an outstanding load owns it,
//! so an entry whose registers were all last written by non-loads can
//! never wait ([`TraceTape::barriers`]). Replay exploits this by issuing
//! everything between barriers in bulk.
//!
//! A packed flag plane (one `u64` word per 64 barriers, bit set = memory
//! operation) shadows the barrier index so the replay loop's quiescent
//! scan ([`TraceTape::next_mem_barrier`]) strides over non-memory spans
//! 64 barriers at a time instead of probing bit 31 entry by entry.
//!
//! 13 bytes per dynamic instruction plus 4 per barrier (~40 % of entries
//! on the paper's workload mixes) plus 8 per 64-barrier flag word, laid
//! out so a replay touches each array linearly: ~0.6 MiB for a
//! quick-scale (~40 k instruction) run and ~6 MiB for a full-scale
//! (~400 k) one — see [`TraceTape::bytes`] and DESIGN.md §12 for the
//! footprint bounds.
//!
//! The tape is itself an [`InstSink`], so recording is just running the
//! executor once into it ([`TraceTape::record`]); `nbl-sim` caches the
//! result per `(benchmark, latency, fingerprint)` and replays it through
//! the processor models for every grid point.

use crate::exec::Executor;
use crate::machine::{CompiledProgram, InstSink};
use nbl_core::inst::{DynInst, DynKind};
use nbl_core::types::{AccessSize, Addr, LoadFormat, PhysReg};

/// Versioned, checksummed binary (de)serialization of tapes — the byte
/// format the artifact store persists (DESIGN.md §16).
pub mod io;

/// Dense register encoding for "no register".
const REG_NONE: u8 = u8::MAX;

/// Bit 31 of a barrier entry: set when the barrier is a memory operation
/// (see [`TraceTape::barriers`]). Instruction indices stay well below
/// 2³¹, so the top bit is free for the flag the replay loop's quiescent
/// scan needs on every entry — reading it from the packed entry avoids a
/// random-stride lookup into the `kinds` array.
pub const BARRIER_MEM: u32 = 1 << 31;

/// Instruction index of a packed barrier entry.
#[inline]
#[must_use]
pub fn barrier_index(entry: u32) -> usize {
    (entry & !BARRIER_MEM) as usize
}

/// `true` if a packed barrier entry is a memory operation.
#[inline]
#[must_use]
pub fn barrier_is_mem(entry: u32) -> bool {
    entry & BARRIER_MEM != 0
}

/// What one tape entry does. One byte per entry; the split of
/// [`DynKind::Alu`] into `Alu` (has a destination) and `Branch` (none)
/// keeps the destination array sentinel-free on the hot load path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TapeKind {
    /// Single-cycle computation writing a destination register.
    Alu = 0,
    /// Branch / compare: single-cycle, no destination.
    Branch = 1,
    /// Load: reads `addrs[i]`, writes `dsts[i]`, format in `formats[i]`.
    Load = 2,
    /// Store: writes memory at `addrs[i]`.
    Store = 3,
}

/// One memory operation of a tape, as yielded by [`TraceTape::mem_ops`]:
/// the flattened (instruction index, kind, address) triple the static
/// cache oracle classifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Position of the instruction in the tape.
    pub index: usize,
    /// `true` for stores, `false` for loads.
    pub is_store: bool,
    /// Effective byte address.
    pub addr: Addr,
}

#[inline]
fn pack_reg(r: Option<PhysReg>) -> u8 {
    r.map_or(REG_NONE, |r| r.dense_index() as u8)
}

/// Bitmap bit of a packed register (`0` for the `REG_NONE` sentinel — the
/// 64 dense register indices all fit a `u64`).
#[inline]
fn reg_bit(packed: u8) -> u64 {
    if packed == REG_NONE {
        0
    } else {
        1u64 << packed
    }
}

#[inline]
fn unpack_reg(b: u8) -> Option<PhysReg> {
    (b != REG_NONE).then(|| PhysReg::from_dense(b as usize))
}

#[inline]
fn pack_format(f: LoadFormat) -> u8 {
    let size = match f.size {
        AccessSize::B1 => 0u8,
        AccessSize::B2 => 1,
        AccessSize::B4 => 2,
        AccessSize::B8 => 3,
    };
    size | (u8::from(f.sign_extend) << 2)
}

#[inline]
fn unpack_format(b: u8) -> LoadFormat {
    let size = match b & 0b11 {
        0 => AccessSize::B1,
        1 => AccessSize::B2,
        2 => AccessSize::B4,
        _ => AccessSize::B8,
    };
    LoadFormat {
        size,
        sign_extend: b & 0b100 != 0,
    }
}

/// A recorded dynamic instruction stream in struct-of-arrays form. See the
/// module docs for the encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTape {
    name: String,
    load_latency: u32,
    static_spill_ops: usize,
    kinds: Vec<TapeKind>,
    dsts: Vec<u8>,
    srcs: Vec<[u8; 2]>,
    addrs: Vec<u64>,
    formats: Vec<u8>,
    barriers: Vec<u32>,
    /// Packed flag plane over barrier *positions*: bit `k` of word `w` is
    /// set when `barriers[w * 64 + k]` is a memory operation. Redundant
    /// with bit 31 of each barrier entry, but laid out so the replay
    /// loop's quiescent scan ([`TraceTape::next_mem_barrier`]) advances
    /// in 64-barrier strides instead of probing entries one at a time.
    mem_flags: Vec<u64>,
    /// Bitmap of registers whose most recent writer (so far) is a load —
    /// recording state for the barrier computation in [`TraceTape::push`].
    load_written: u64,
    loads: u64,
    stores: u64,
}

impl TraceTape {
    /// An empty tape with the given identity and reserved capacity.
    pub fn with_capacity(
        name: &str,
        load_latency: u32,
        static_spill_ops: usize,
        capacity: usize,
    ) -> TraceTape {
        TraceTape {
            name: name.to_string(),
            load_latency,
            static_spill_ops,
            kinds: Vec::with_capacity(capacity),
            dsts: Vec::with_capacity(capacity),
            srcs: Vec::with_capacity(capacity),
            addrs: Vec::with_capacity(capacity),
            formats: Vec::with_capacity(capacity),
            barriers: Vec::new(),
            mem_flags: Vec::new(),
            load_written: 0,
            loads: 0,
            stores: 0,
        }
    }

    /// Records `compiled` by running the executor once into a fresh tape.
    /// The stream is bit-identical to what any processor-backed sink would
    /// have received — the tape just stores it instead of timing it.
    pub fn record(compiled: &CompiledProgram) -> TraceTape {
        let capacity = usize::try_from(compiled.dynamic_instructions()).unwrap_or(0);
        let mut tape = TraceTape::with_capacity(
            &compiled.name,
            compiled.load_latency,
            compiled.blocks.iter().map(|b| b.spill_ops).sum(),
            capacity,
        );
        Executor::new(compiled).run(&mut tape);
        debug_assert_eq!(tape.len() as u64, compiled.dynamic_instructions());
        tape.barriers.shrink_to_fit();
        tape.mem_flags.shrink_to_fit();
        tape
    }

    /// Appends one instruction (the [`InstSink`] implementation calls this).
    ///
    /// Besides the packed arrays this maintains the barrier index: the
    /// entry is a barrier when it is a memory operation, or when any of
    /// its registers (sources or destination) was most recently written
    /// by a load — the only way a register can be pending when the entry
    /// issues. The "most recent writer is a load" bitmap is then updated
    /// for the entry's own destination: a load sets its bit, an ALU write
    /// clears it, branches and stores write no register.
    pub fn push(&mut self, inst: DynInst) {
        let (kind, dst, addr, format) = match inst.kind {
            DynKind::Load { addr, dst, format } => {
                self.loads += 1;
                (TapeKind::Load, Some(dst), addr.0, pack_format(format))
            }
            DynKind::Store { addr } => {
                self.stores += 1;
                (TapeKind::Store, None, addr.0, 0)
            }
            DynKind::Alu { dst: Some(dst) } => (TapeKind::Alu, Some(dst), 0, 0),
            DynKind::Alu { dst: None } => (TapeKind::Branch, None, 0, 0),
        };
        let d = pack_reg(dst);
        let [s0, s1] = [pack_reg(inst.srcs[0]), pack_reg(inst.srcs[1])];
        let is_mem = matches!(kind, TapeKind::Load | TapeKind::Store);
        if is_mem || (reg_bit(d) | reg_bit(s0) | reg_bit(s1)) & self.load_written != 0 {
            let slot = self.barriers.len();
            if slot.is_multiple_of(64) {
                self.mem_flags.push(0);
            }
            if is_mem {
                self.mem_flags[slot / 64] |= 1u64 << (slot % 64);
            }
            let flag = if is_mem { BARRIER_MEM } else { 0 };
            self.barriers.push(self.kinds.len() as u32 | flag);
        }
        match kind {
            TapeKind::Load => self.load_written |= reg_bit(d),
            TapeKind::Alu => self.load_written &= !reg_bit(d),
            TapeKind::Branch | TapeKind::Store => {}
        }
        self.kinds.push(kind);
        self.dsts.push(d);
        self.srcs.push([s0, s1]);
        self.addrs.push(addr);
        self.formats.push(format);
    }

    /// Benchmark name the tape was recorded from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Scheduled load latency the recorded program was compiled for.
    pub fn load_latency(&self) -> u32 {
        self.load_latency
    }

    /// Spill memory operations the compiler added, per static program
    /// (carried so replay can build a full `RunResult` without the
    /// [`CompiledProgram`]).
    pub fn static_spill_ops(&self) -> usize {
        self.static_spill_ops
    }

    /// Number of recorded instructions.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Loads recorded.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Stores recorded.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Heap footprint of the instruction arrays, in bytes (13 per entry
    /// plus 4 per barrier plus 8 per 64-barrier flag word; the instruction
    /// `Vec`s reserve exact capacity at record time via
    /// [`CompiledProgram::dynamic_instructions`], and [`TraceTape::record`]
    /// shrinks the barrier index and flag plane when done).
    pub fn bytes(&self) -> usize {
        self.kinds.capacity()
            + self.dsts.capacity()
            + self.srcs.capacity() * 2
            + self.addrs.capacity() * 8
            + self.formats.capacity()
            + self.barriers.capacity() * 4
            + self.mem_flags.capacity() * 8
    }

    /// Kind of entry `i`.
    #[inline]
    pub fn kind(&self, i: usize) -> TapeKind {
        self.kinds[i]
    }

    /// Effective address of entry `i` (meaningful for memory operations).
    #[inline]
    pub fn addr(&self, i: usize) -> Addr {
        Addr(self.addrs[i])
    }

    /// Destination register of entry `i`, if it writes one.
    #[inline]
    pub fn dst(&self, i: usize) -> Option<PhysReg> {
        unpack_reg(self.dsts[i])
    }

    /// Source registers of entry `i` (positional, as recorded).
    #[inline]
    pub fn srcs(&self, i: usize) -> [Option<PhysReg>; 2] {
        let [a, b] = self.srcs[i];
        [unpack_reg(a), unpack_reg(b)]
    }

    /// Load format of entry `i` (meaningful for loads).
    #[inline]
    pub fn format(&self, i: usize) -> LoadFormat {
        unpack_format(self.formats[i])
    }

    /// `true` if entry `i` is a memory operation.
    #[inline]
    pub fn is_mem(&self, i: usize) -> bool {
        matches!(self.kinds[i], TapeKind::Load | TapeKind::Store)
    }

    /// Walks the tape's memory operations in program order: one
    /// [`MemOp`] per load or store, carrying the instruction index and
    /// effective address. This is the walk API the static cache oracle
    /// consumes — its classification vector and the simulator's
    /// `AccessOutcome` tap both index accesses in this order, so the
    /// *n*-th item here lines up with the *n*-th recorded outcome.
    #[inline]
    pub fn mem_ops(&self) -> impl Iterator<Item = MemOp> + '_ {
        self.kinds
            .iter()
            .enumerate()
            .filter_map(move |(i, &k)| match k {
                TapeKind::Load => Some(MemOp {
                    index: i,
                    is_store: false,
                    addr: Addr(self.addrs[i]),
                }),
                TapeKind::Store => Some(MemOp {
                    index: i,
                    is_store: true,
                    addr: Addr(self.addrs[i]),
                }),
                TapeKind::Alu | TapeKind::Branch => None,
            })
    }

    /// The barrier entries, in ascending instruction order: the memory
    /// operations plus every entry that reads or rewrites a register
    /// whose most recent writer is a load. A register is pending only
    /// while the load that last wrote it is outstanding, so entries *not*
    /// in this index can never stall and never touch the memory system —
    /// the replay loop issues the gaps between barriers in bulk (one
    /// instruction, one cycle each) and runs the full
    /// drain/hazard/execute machinery only at the barriers themselves.
    ///
    /// Each entry packs the instruction index in its low 31 bits
    /// ([`barrier_index`]) and the memory-operation flag in bit 31
    /// ([`barrier_is_mem`], [`BARRIER_MEM`]), so the replay loop's
    /// quiescent scan classifies a barrier without touching the `kinds`
    /// array.
    #[inline]
    pub fn barriers(&self) -> &[u32] {
        &self.barriers
    }

    /// Index (into [`TraceTape::barriers`]) of the first barrier at or
    /// after `from` that is a memory operation, or `barriers().len()` when
    /// none remains.
    ///
    /// This is the vectorized form of the scalar scan
    /// `while from < n && !barrier_is_mem(barriers[from]) { from += 1 }`:
    /// it reads the packed flag plane in `u64` words, so a span of
    /// non-memory barriers is skipped 64 entries per iteration instead of
    /// one. The replay loop leans on this whenever the engine is
    /// quiescent — every barrier until the next memory operation then
    /// bulk-issues, and the scan is the only per-entry work left.
    #[inline]
    #[must_use]
    pub fn next_mem_barrier(&self, from: usize) -> usize {
        let n = self.barriers.len();
        if from >= n {
            return n;
        }
        let mut word = from / 64;
        let mut bits = self.mem_flags[word] & (u64::MAX << (from % 64));
        while bits == 0 {
            word += 1;
            if word >= self.mem_flags.len() {
                return n;
            }
            bits = self.mem_flags[word];
        }
        // A set bit only ever marks a real barrier slot, so the result is
        // in bounds by construction.
        word * 64 + bits.trailing_zeros() as usize
    }

    /// `true` if entry `j` reads or rewrites the register entry `i` writes
    /// — [`DynInst::conflicts_with`] evaluated on the packed encoding (a
    /// byte compare against the `0xff` sentinel, no decode).
    #[inline]
    pub fn conflicts(&self, i: usize, j: usize) -> bool {
        let d = self.dsts[i];
        if d == REG_NONE {
            return false;
        }
        let [s0, s1] = self.srcs[j];
        s0 == d || s1 == d || self.dsts[j] == d
    }

    /// Reconstructs entry `i` as a [`DynInst`].
    pub fn get(&self, i: usize) -> DynInst {
        let srcs = self.srcs(i);
        let kind = match self.kinds[i] {
            TapeKind::Alu => DynKind::Alu { dst: self.dst(i) },
            TapeKind::Branch => DynKind::Alu { dst: None },
            TapeKind::Load => DynKind::Load {
                addr: self.addr(i),
                // nbl-allow(no-panic): InstSink::record stores a dst for every load
                dst: self.dst(i).expect("loads always record a destination"),
                format: self.format(i),
            },
            TapeKind::Store => DynKind::Store { addr: self.addr(i) },
        };
        DynInst { srcs, kind }
    }

    /// Iterates the tape as reconstructed [`DynInst`]s (for consumers that
    /// need owned instructions, e.g. the dual-issue pairing buffer; the
    /// single-issue replay loop reads the arrays directly instead).
    pub fn iter(&self) -> impl Iterator<Item = DynInst> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }
}

impl InstSink for TraceTape {
    #[inline]
    fn exec(&mut self, inst: DynInst) {
        self.push(inst);
    }
}

/// Property suite for the chunked mem-barrier scan, gated behind the
/// off-by-default `scan-prop` feature (run with
/// `cargo test -p nbl-trace --features scan-prop`). Uses the in-tree
/// [`SplitMix64`](nbl_core::rng::SplitMix64) so the cases are
/// deterministic and the workspace stays dependency-free.
#[cfg(all(test, feature = "scan-prop"))]
mod scan_prop {
    use super::*;
    use nbl_core::rng::SplitMix64;

    fn scalar_next_mem_barrier(tape: &TraceTape, mut from: usize) -> usize {
        let barriers = tape.barriers();
        while from < barriers.len() && !barrier_is_mem(barriers[from]) {
            from += 1;
        }
        from
    }

    fn check_all_starts(tape: &TraceTape, label: &str) {
        for from in 0..=tape.barriers().len() + 65 {
            assert_eq!(
                tape.next_mem_barrier(from),
                scalar_next_mem_barrier(tape, from.min(tape.barriers().len())),
                "{label}: scan diverged at start {from}"
            );
        }
    }

    /// One random instruction; `mem_bias`/1000 is the memory-op rate, so
    /// seeds can steer tapes toward all-mem, no-mem or mixed layouts.
    fn random_inst(rng: &mut SplitMix64, mem_bias: u64) -> DynInst {
        let reg = |rng: &mut SplitMix64| PhysReg::from_dense(rng.next_below(64) as usize);
        let maybe_reg = |rng: &mut SplitMix64| {
            if rng.next_below(2) == 0 {
                None
            } else {
                Some(reg(rng))
            }
        };
        if rng.next_below(1000) < mem_bias {
            if rng.next_below(2) == 0 {
                DynInst::load(Addr(rng.next_below(1 << 20)), reg(rng), LoadFormat::WORD)
            } else {
                DynInst::store(Addr(rng.next_below(1 << 20)), maybe_reg(rng))
            }
        } else if rng.next_below(4) == 0 {
            DynInst::branch([maybe_reg(rng), maybe_reg(rng)])
        } else {
            DynInst::alu(reg(rng), [maybe_reg(rng), maybe_reg(rng)])
        }
    }

    #[test]
    fn chunked_scan_agrees_with_scalar_on_random_layouts() {
        let mut rng = SplitMix64::new(0x5ca9);
        // Mixed rates, including all-mem (1000) and no-mem (0) spans, and
        // lengths chosen to land both short of and straddling word
        // boundaries (tail-word coverage).
        for &mem_bias in &[0, 15, 120, 500, 930, 1000] {
            for case in 0..24 {
                let len = 1 + rng.next_below(400) as usize;
                let mut tape = TraceTape::with_capacity("prop", 1, 0, len);
                for _ in 0..len {
                    let inst = random_inst(&mut rng, mem_bias);
                    tape.push(inst);
                }
                check_all_starts(&tape, &format!("bias {mem_bias} case {case}"));
            }
        }
    }

    #[test]
    fn chunked_scan_handles_exact_word_multiples() {
        let mut rng = SplitMix64::new(0xb0b);
        // Exactly 64 and 128 barriers: the tail word is full, exercising
        // the word-boundary exit paths.
        for &barriers_wanted in &[64usize, 128] {
            let mut tape = TraceTape::with_capacity("prop", 1, 0, barriers_wanted);
            while tape.barriers().len() < barriers_wanted {
                let inst = random_inst(&mut rng, 700);
                tape.push(inst);
            }
            check_all_starts(&tape, &format!("{barriers_wanted} barriers"));
        }
    }

    #[test]
    fn empty_tape_scan_is_a_no_op() {
        let tape = TraceTape::with_capacity("prop", 1, 0, 0);
        assert_eq!(tape.next_mem_barrier(0), 0);
        assert_eq!(tape.next_mem_barrier(10), 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{AddrPattern, BlockId, PatternId, ScriptNode};
    use crate::machine::{MachineBlock, MachineOp};

    /// A program exercising every pattern kind and op shape: a chase load,
    /// a strided store, a gather load, ALU and branch — looped so the
    /// pattern states advance through wrap-around and re-seeding.
    fn exercise_program() -> CompiledProgram {
        CompiledProgram {
            name: "exercise".into(),
            load_latency: 6,
            patterns: vec![
                AddrPattern::Chase {
                    base: 0x1_0000,
                    node_bytes: 32,
                    nodes: 16,
                    field_offset: 8,
                    seed: 5,
                },
                AddrPattern::Strided {
                    base: 0x2_0000,
                    elem_bytes: 8,
                    stride: 3,
                    length: 7,
                },
                AddrPattern::Gather {
                    base: 0x3_0000,
                    elem_bytes: 4,
                    length: 50,
                    seed: 11,
                },
            ],
            blocks: vec![MachineBlock {
                ops: vec![
                    MachineOp::Load {
                        dst: PhysReg::int(1),
                        pattern: PatternId(0),
                        format: LoadFormat::DOUBLE,
                        addr_src: Some(PhysReg::int(1)),
                    },
                    MachineOp::Alu {
                        dst: PhysReg::fp(2),
                        srcs: [Some(PhysReg::int(1)), Some(PhysReg::fp(3))],
                    },
                    MachineOp::Store {
                        pattern: PatternId(1),
                        data: Some(PhysReg::fp(2)),
                        addr_src: None,
                    },
                    MachineOp::Load {
                        dst: PhysReg::int(4),
                        pattern: PatternId(2),
                        format: LoadFormat {
                            size: AccessSize::B2,
                            sign_extend: true,
                        },
                        addr_src: None,
                    },
                    MachineOp::Branch {
                        srcs: [Some(PhysReg::int(4)), None],
                    },
                ],
                spill_ops: 3,
            }],
            script: vec![ScriptNode::Loop {
                body: vec![ScriptNode::Run {
                    block: BlockId(0),
                    times: 4,
                }],
                trips: 25,
            }],
        }
    }

    #[test]
    fn recorded_tape_matches_the_executor_stream_exactly() {
        let c = exercise_program();
        let mut interpreted: Vec<DynInst> = Vec::new();
        Executor::new(&c).run(&mut interpreted);
        let tape = TraceTape::record(&c);
        assert_eq!(tape.len(), interpreted.len());
        assert_eq!(tape.len() as u64, c.dynamic_instructions());
        let replayed: Vec<DynInst> = tape.iter().collect();
        assert_eq!(replayed, interpreted, "streams must be identical");
    }

    #[test]
    fn mem_ops_projects_exactly_the_memory_stream() {
        let c = exercise_program();
        let tape = TraceTape::record(&c);
        let ops: Vec<MemOp> = tape.mem_ops().collect();
        assert_eq!(ops.len() as u64, tape.loads() + tape.stores());
        // Every projected op points back at a matching tape entry, in
        // strictly increasing instruction order.
        let mut last = None;
        for op in &ops {
            assert!(last.is_none_or(|l| op.index > l), "indices must ascend");
            last = Some(op.index);
            match tape.kind(op.index) {
                TapeKind::Load => assert!(!op.is_store),
                TapeKind::Store => assert!(op.is_store),
                other => panic!("mem_ops yielded a {other:?}"),
            }
            assert_eq!(op.addr, tape.addr(op.index));
        }
    }

    #[test]
    fn identity_and_counts_come_from_the_program() {
        let c = exercise_program();
        let tape = TraceTape::record(&c);
        assert_eq!(tape.name(), "exercise");
        assert_eq!(tape.load_latency(), 6);
        let (loads, stores, _) = c.dynamic_mix();
        assert_eq!(tape.loads(), loads);
        assert_eq!(tape.stores(), stores);
        assert_eq!(tape.static_spill_ops(), 3);
    }

    #[test]
    fn footprint_is_thirteen_bytes_per_instruction_plus_barriers() {
        let tape = TraceTape::record(&exercise_program());
        let flag_words = tape.barriers().len().div_ceil(64);
        assert_eq!(
            tape.bytes(),
            tape.len() * 13 + tape.barriers().len() * 4 + flag_words * 8
        );
        assert!(!tape.is_empty());
    }

    /// Scalar reference for [`TraceTape::next_mem_barrier`]: the per-entry
    /// bit-31 probe the chunked scan replaced.
    fn scalar_next_mem_barrier(tape: &TraceTape, mut from: usize) -> usize {
        let barriers = tape.barriers();
        while from < barriers.len() && !barrier_is_mem(barriers[from]) {
            from += 1;
        }
        from
    }

    #[test]
    fn chunked_mem_scan_matches_scalar_probe_on_a_recorded_tape() {
        let tape = TraceTape::record(&exercise_program());
        assert!(tape.barriers().len() > 64, "needs a multi-word flag plane");
        for from in 0..=tape.barriers().len() + 2 {
            assert_eq!(
                tape.next_mem_barrier(from),
                scalar_next_mem_barrier(&tape, from.min(tape.barriers().len())),
                "scan diverged at {from}"
            );
        }
    }

    #[test]
    fn barriers_cover_exactly_the_entries_that_can_stall() {
        let tape = TraceTape::record(&exercise_program());
        // Reference computation: walk the stream tracking which registers
        // were most recently written by a load.
        let mut loadw: u64 = 0;
        let mut expected = Vec::new();
        for (i, inst) in tape.iter().enumerate() {
            let touches_loadw = inst
                .srcs
                .iter()
                .copied()
                .chain([inst.dst()])
                .flatten()
                .any(|r| loadw & (1u64 << r.dense_index()) != 0);
            if inst.is_mem() || touches_loadw {
                expected.push(i as u32 | if inst.is_mem() { BARRIER_MEM } else { 0 });
            }
            if let Some(d) = inst.dst() {
                match inst.kind {
                    DynKind::Load { .. } => loadw |= 1u64 << d.dense_index(),
                    DynKind::Alu { .. } => loadw &= !(1u64 << d.dense_index()),
                    DynKind::Store { .. } => unreachable!("stores write no register"),
                }
            }
        }
        assert_eq!(tape.barriers(), expected.as_slice());
        // Every memory operation must be a barrier, flagged as one.
        let mem_barriers: Vec<usize> = tape
            .barriers()
            .iter()
            .filter(|&&e| barrier_is_mem(e))
            .map(|&e| barrier_index(e))
            .collect();
        let mem_entries: Vec<usize> = (0..tape.len()).filter(|&i| tape.is_mem(i)).collect();
        assert_eq!(mem_barriers, mem_entries);
    }

    #[test]
    fn alu_rewrite_retires_a_load_written_register() {
        let mut tape = TraceTape::with_capacity("t", 1, 0, 8);
        let (r1, r2, r3) = (PhysReg::int(1), PhysReg::int(2), PhysReg::int(3));
        // ALU chain touching no load results: no barriers.
        tape.push(DynInst::alu(r2, [None, None]));
        tape.push(DynInst::alu(r3, [Some(r2), None]));
        // A load, a consumer, a WAW rewrite: all barriers.
        tape.push(DynInst::load(Addr(0x100), r1, LoadFormat::WORD));
        tape.push(DynInst::alu(r2, [Some(r1), None]));
        tape.push(DynInst::alu(r1, [None, None]));
        // r1 now ALU-owned again: reading it is no barrier.
        tape.push(DynInst::alu(r3, [Some(r1), None]));
        assert_eq!(tape.barriers(), &[2 | BARRIER_MEM, 3, 4]);
    }

    #[test]
    fn format_packing_round_trips() {
        for size in [
            AccessSize::B1,
            AccessSize::B2,
            AccessSize::B4,
            AccessSize::B8,
        ] {
            for sign_extend in [false, true] {
                let f = LoadFormat { size, sign_extend };
                assert_eq!(unpack_format(pack_format(f)), f);
            }
        }
    }

    #[test]
    fn register_packing_round_trips() {
        assert_eq!(unpack_reg(pack_reg(None)), None);
        for dense in 0..64 {
            let r = PhysReg::from_dense(dense);
            assert_eq!(unpack_reg(pack_reg(Some(r))), Some(r));
        }
    }

    #[test]
    fn packed_conflict_check_matches_dyninst() {
        let tape = TraceTape::record(&exercise_program());
        for i in 0..tape.len() - 1 {
            let (a, b) = (tape.get(i), tape.get(i + 1));
            assert_eq!(
                tape.conflicts(i, i + 1),
                a.conflicts_with(&b),
                "entry {i}: packed conflict check must agree"
            );
            assert_eq!(tape.is_mem(i), a.is_mem());
        }
        // The exercise block contains both a true conflict (load feeding
        // the ALU) and a non-conflict (store then gather load).
        assert!(tape.conflicts(0, 1));
        assert!(!tape.conflicts(2, 3));
    }

    #[test]
    fn per_entry_accessors_agree_with_reconstruction() {
        let tape = TraceTape::record(&exercise_program());
        for i in 0..tape.len() {
            let inst = tape.get(i);
            assert_eq!(tape.dst(i), inst.dst());
            assert_eq!(tape.srcs(i), inst.srcs);
            match inst.kind {
                DynKind::Load { addr, format, .. } => {
                    assert_eq!(tape.kind(i), TapeKind::Load);
                    assert_eq!(tape.addr(i), addr);
                    assert_eq!(tape.format(i), format);
                }
                DynKind::Store { addr } => {
                    assert_eq!(tape.kind(i), TapeKind::Store);
                    assert_eq!(tape.addr(i), addr);
                }
                DynKind::Alu { dst: Some(_) } => assert_eq!(tape.kind(i), TapeKind::Alu),
                DynKind::Alu { dst: None } => assert_eq!(tape.kind(i), TapeKind::Branch),
            }
        }
    }
}
