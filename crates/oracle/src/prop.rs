//! Property suite for the oracle (feature `oracle-prop`): random tapes
//! × random geometries × every replacement policy, soundness-checked
//! against the real engine, plus exactness assertions in the regimes
//! where the analysis is supposed to be complete, plus a direct
//! property test of the stamp characterization the soundness argument
//! rests on (via [`TagArray::debug_ages`]).
//!
//! Everything is seeded [`SplitMix64`] — deterministic and
//! dependency-free, in the style of the tape's `scan_prop` suite.

use crate::check::check_cell;
use crate::domain::analyze_tape;
use crate::OracleConfig;
use nbl_core::geometry::CacheGeometry;
use nbl_core::inst::DynInst;
use nbl_core::rng::SplitMix64;
use nbl_core::tag_array::{ReplacementKind, TagArray};
use nbl_core::types::{Addr, LoadFormat, PhysReg};
use nbl_sim::config::{HwConfig, SimConfig};
use nbl_trace::TraceTape;

/// One random instruction; `mem_bias`/1000 is the memory-op rate and
/// `addr_bits` bounds the address range (small ranges force set reuse).
fn random_inst(rng: &mut SplitMix64, mem_bias: u64, addr_bits: u32) -> DynInst {
    let reg = |rng: &mut SplitMix64| PhysReg::from_dense(rng.next_below(64) as usize);
    let maybe_reg = |rng: &mut SplitMix64| {
        if rng.next_below(2) == 0 {
            None
        } else {
            Some(reg(rng))
        }
    };
    if rng.next_below(1000) < mem_bias {
        let addr = Addr(rng.next_below(1 << addr_bits));
        if rng.next_below(3) == 0 {
            DynInst::store(addr, maybe_reg(rng))
        } else {
            DynInst::load(addr, reg(rng), LoadFormat::WORD)
        }
    } else if rng.next_below(4) == 0 {
        DynInst::branch([maybe_reg(rng), maybe_reg(rng)])
    } else {
        DynInst::alu(reg(rng), [maybe_reg(rng), maybe_reg(rng)])
    }
}

fn random_tape(rng: &mut SplitMix64, len: usize, mem_bias: u64, addr_bits: u32) -> TraceTape {
    let mut tape = TraceTape::with_capacity("oracle-prop", 10, 0, len);
    for _ in 0..len {
        tape.push(random_inst(rng, mem_bias, addr_bits));
    }
    tape
}

fn small_geometries() -> Vec<CacheGeometry> {
    // Tiny caches so random address streams actually evict: 8 sets dm,
    // 4 sets 2-way, 2 sets 4-way, fully associative 8-way.
    vec![
        CacheGeometry::new(256, 32, 1).expect("dm"),
        CacheGeometry::new(256, 32, 2).expect("2-way"),
        CacheGeometry::new(256, 32, 4).expect("4-way"),
        CacheGeometry::new(256, 32, 8).expect("8-way"),
    ]
}

/// Soundness: across random tapes, geometries, policies and fill-timing
/// regimes, the cross-check never observes a violation.
#[test]
fn random_tapes_never_violate_the_cross_check() {
    let mut rng = SplitMix64::new(0x0bac1e_5eed);
    let hws = [HwConfig::Mc0, HwConfig::Fc(2), HwConfig::NoRestrict];
    for case in 0..6 {
        let len = 200 + rng.next_below(600) as usize;
        let tape = random_tape(&mut rng, len, 600, 11);
        for geometry in small_geometries() {
            for policy in ReplacementKind::all() {
                for hw in &hws {
                    let cfg = SimConfig::baseline(hw.clone())
                        .with_geometry(geometry)
                        .with_replacement(policy);
                    let report = check_cell("oracle-prop", &tape, &cfg).expect("cell");
                    assert!(
                        report.violations.is_empty(),
                        "case {case} {} {} {}: {:?}",
                        report.geometry,
                        report.policy,
                        report.hw,
                        report.violations
                    );
                }
            }
        }
    }
}

/// Exactness: with a blocking cache (window 0) the analysis is complete
/// for every policy on direct-mapped sets, and for LRU and FIFO at any
/// associativity — zero unknowns, so the classes *equal* the outcomes.
#[test]
fn window_zero_is_exact_where_claimed() {
    let mut rng = SplitMix64::new(0xeaac7);
    for case in 0..6 {
        let len = 200 + rng.next_below(600) as usize;
        let tape = random_tape(&mut rng, len, 600, 11);
        for geometry in small_geometries() {
            for policy in ReplacementKind::all() {
                let exact = geometry.ways() == 1
                    || matches!(policy, ReplacementKind::Lru | ReplacementKind::Fifo);
                if !exact {
                    continue;
                }
                let cfg = SimConfig::baseline(HwConfig::Mc0)
                    .with_geometry(geometry)
                    .with_replacement(policy);
                let report = check_cell("oracle-prop", &tape, &cfg).expect("cell");
                assert!(report.violations.is_empty(), "case {case}: violations");
                assert_eq!(
                    report.coverage.unknown, 0,
                    "case {case} {} {}: blocking analysis left unknowns",
                    report.geometry, report.policy
                );
            }
        }
    }
}

/// The write-around refinement: a store-only tape under `mc=0`
/// (write-around stores) never installs anything, so every access is a
/// must-miss.
#[test]
fn write_around_stores_never_install() {
    let mut tape = TraceTape::with_capacity("oracle-prop", 10, 0, 64);
    for i in 0..64u64 {
        tape.push(DynInst::store(Addr((i % 8) * 32), None));
    }
    let cfg = SimConfig::baseline(HwConfig::Mc0)
        .with_geometry(CacheGeometry::new(256, 32, 4).expect("4-way"));
    let ocfg = OracleConfig::from_sim(&cfg).expect("supported");
    assert!(!ocfg.write_allocate, "mc=0 must be write-around");
    let analysis = analyze_tape(&tape, &ocfg);
    assert_eq!(analysis.coverage.must_miss, analysis.coverage.accesses);
    let report = check_cell("oracle-prop", &tape, &cfg).expect("cell");
    assert!(report.violations.is_empty());
}

/// A hand-built tape where the expected classes are known by inspection:
/// A miss, A hit, B..E fill the 4-way set, A evicted (LRU), A miss again.
#[test]
fn hand_built_lru_eviction_is_classified_exactly() {
    let geometry = CacheGeometry::new(256, 32, 4).expect("4-way");
    // Blocks mapping to set 0 of a 2-set cache: stride 64 bytes.
    let blk = |i: u64| Addr(i * 64);
    let reg = PhysReg::from_dense(1);
    let mut tape = TraceTape::with_capacity("oracle-prop", 10, 0, 8);
    let pattern = [0u64, 0, 1, 2, 3, 4, 0]; // A A B C D E A
    for &b in &pattern {
        tape.push(DynInst::load(blk(b), reg, LoadFormat::WORD));
    }
    let cfg = SimConfig::baseline(HwConfig::Mc0)
        .with_geometry(geometry)
        .with_replacement(ReplacementKind::Lru);
    let ocfg = OracleConfig::from_sim(&cfg).expect("supported");
    let analysis = analyze_tape(&tape, &ocfg);
    use crate::domain::Classification::{MustHit, MustMiss};
    assert_eq!(
        analysis.classes,
        vec![MustMiss, MustHit, MustMiss, MustMiss, MustMiss, MustMiss, MustMiss],
        "A(miss) A(hit) B C D E(evicts A) A(miss)"
    );
    let report = check_cell("oracle-prop", &tape, &cfg).expect("cell");
    assert!(report.violations.is_empty());
}

/// The stamp characterization itself, straight against the tag array:
/// under LRU the resident blocks of a set are exactly the `W` most
/// recently stamped (touched-or-installed) distinct blocks; under FIFO,
/// the `W` most recently *installed*.
#[test]
fn stamp_characterization_matches_debug_ages() {
    let mut rng = SplitMix64::new(0x57a3b);
    for (policy, stamps_on_hit) in [(ReplacementKind::Lru, true), (ReplacementKind::Fifo, false)] {
        for geometry in small_geometries() {
            let mut tags = TagArray::new(geometry, policy);
            let ways = geometry.ways() as usize;
            // Per-set model: distinct blocks in stamp order, oldest first.
            let mut model: Vec<Vec<u64>> = vec![Vec::new(); geometry.num_sets() as usize];
            for _ in 0..2000 {
                let addr = Addr(rng.next_below(1 << 11));
                let block = geometry.block_of(addr);
                let set = geometry.set_of_block(block) as usize;
                let hit = tags.touch(block);
                if !hit {
                    tags.install(block);
                }
                if hit && !stamps_on_hit {
                    continue; // FIFO: hits don't re-stamp
                }
                model[set].retain(|&b| b != block.0);
                model[set].push(block.0);
            }
            for (set, stamped) in model.iter().enumerate() {
                let resident: Vec<u64> = tags
                    .debug_ages(set as u32)
                    .into_iter()
                    .filter_map(|w| w.block.map(|b| b.0))
                    .collect();
                let top: Vec<u64> = stamped.iter().rev().take(ways).copied().collect();
                assert_eq!(
                    resident.len(),
                    top.len(),
                    "{policy:?} set {set}: residency count"
                );
                for b in &top {
                    assert!(
                        resident.contains(b),
                        "{policy:?} set {set}: top-{ways} block {b:#x} not resident"
                    );
                }
            }
        }
    }
}
