//! `figures` — regenerates every table and figure of the paper's
//! evaluation section.
//!
//! ```text
//! cargo run -p nbl-bench --release -- all            # everything
//! cargo run -p nbl-bench --release -- fig5 fig13     # selected exhibits
//! cargo run -p nbl-bench --release -- list           # registered exhibits
//! cargo run -p nbl-bench --release -- all --quick    # smoke-scale
//! cargo run -p nbl-bench --release -- all --out results.txt
//! NBL_THREADS=4 cargo run -p nbl-bench --release -- all   # fixed pool
//! ```
//!
//! Exhibits live in the registry table [`experiments::EXHIBITS`];
//! `list`, `help`, `all`, and argument validation all derive from it, so
//! adding an exhibit is one table entry. Simulation cells run on the
//! parallel sweep engine (worker count from `NBL_THREADS` or the
//! machine); every exhibit is timed, and a throughput summary (wall
//! clock, simulated instructions per second, compile-cache counters)
//! prints at the end of the run.

mod experiments;

use experiments::{RunScale, EXHIBITS};
use nbl_sim::telemetry::{Telemetry, TelemetrySnapshot};
use std::io::Write;
use std::time::Instant;

const USAGE: &str = "usage: figures <exhibit ... | all | list> [--quick] [--out FILE] [--csv DIR] [--json DIR]\n                                                  [--bench-reps N] [--bench-date ISO]\n                                                  [--store DIR] [--incremental]\n       run `figures list` for the registered exhibits";

/// One timed exhibit: name, wall-clock seconds, simulated work done.
struct Timing {
    name: &'static str,
    wall: f64,
    work: TelemetrySnapshot,
}

/// Runs one exhibit, recording its wall clock and simulated-work delta.
fn timed<T>(timings: &mut Vec<Timing>, name: &'static str, f: impl FnOnce() -> T) -> T {
    let before = Telemetry::global().snapshot();
    let t0 = Instant::now();
    let value = f();
    timings.push(Timing {
        name,
        wall: t0.elapsed().as_secs_f64(),
        work: Telemetry::global().snapshot().since(before),
    });
    value
}

fn print_summary(out: &mut dyn Write, timings: &[Timing]) {
    let threads = experiments::engine().pool().threads();
    let _ = writeln!(
        out,
        "== Throughput summary ({threads} worker thread{}) ==",
        if threads == 1 { "" } else { "s" }
    );
    let _ = writeln!(
        out,
        "{:>12} {:>9} {:>7} {:>10} {:>12}",
        "exhibit", "wall (s)", "runs", "Minst", "Minst/s"
    );
    let mut total_wall = 0.0;
    let mut total = TelemetrySnapshot::default();
    for t in timings {
        let _ = writeln!(
            out,
            "{:>12} {:>9.2} {:>7} {:>10.1} {:>12.2}",
            t.name,
            t.wall,
            t.work.runs,
            t.work.instructions as f64 / 1e6,
            t.work.inst_per_sec(t.wall) / 1e6,
        );
        total_wall += t.wall;
        total = TelemetrySnapshot {
            instructions: total.instructions + t.work.instructions,
            cycles: total.cycles + t.work.cycles,
            runs: total.runs + t.work.runs,
            events: total.events + t.work.events,
            policy_runs: total.policy_runs + t.work.policy_runs,
            model_runs: total.model_runs + t.work.model_runs,
            arena_builds: total.arena_builds + t.work.arena_builds,
            arena_reuses: total.arena_reuses + t.work.arena_reuses,
        };
    }
    let _ = writeln!(
        out,
        "{:>12} {:>9.2} {:>7} {:>10.1} {:>12.2}",
        "total",
        total_wall,
        total.runs,
        total.instructions as f64 / 1e6,
        total.inst_per_sec(total_wall) / 1e6,
    );
    let cache = experiments::engine().cache().stats();
    let _ = writeln!(
        out,
        "compile cache: {} compilations, {} reuses (each (benchmark, latency) pair compiled once)",
        cache.compiles, cache.hits
    );
    let tapes = experiments::engine().tapes().stats();
    let _ = writeln!(
        out,
        "tape cache: {} recordings, {} replays, {} evictions ({:.2} MiB resident)",
        tapes.records,
        tapes.hits,
        tapes.evictions,
        tapes.resident_bytes as f64 / (1024.0 * 1024.0)
    );
    if let Some(disk) = experiments::engine().store().disk() {
        let s = disk.stats();
        let _ = writeln!(
            out,
            "artifact store ({}): tapes {} hits / {} misses / {} writes, results {} hits / {} misses / {} writes, {} corrupt, {} io errors",
            disk.root().display(),
            s.tape_hits,
            s.tape_misses,
            s.tape_writes,
            s.result_hits,
            s.result_misses,
            s.result_writes,
            s.corruptions,
            s.io_errors
        );
    }
    if total.arena_builds + total.arena_reuses > 0 {
        let _ = writeln!(
            out,
            "worker arena: {} processor builds, {} warm reuses",
            total.arena_builds, total.arena_reuses
        );
    }
    if total.events > 0 {
        let _ = writeln!(out, "miss-lifecycle events recorded: {}", total.events);
    }
    if total.policy_runs > 0 {
        let _ = writeln!(
            out,
            "non-LRU replacement-policy runs: {}",
            total.policy_runs
        );
    }
}

/// Prints the exhibit registry, one line per entry.
fn print_exhibits() {
    println!("exhibits:");
    for e in EXHIBITS {
        println!("  {:<12} {}", e.name, e.about);
    }
    println!("  {:<12} every exhibit above, in order", "all");
    println!("options:  --quick (smoke scale), --out FILE (tee), --csv DIR (sweep CSVs),");
    println!("          --json DIR (machine-readable results, e.g. results/),");
    println!(
        "          --bench-reps N (best-of-N bench phases), --bench-date ISO (trajectory stamp),"
    );
    println!(
        "          --store DIR (persist tapes/results in a content-addressed artifact store),"
    );
    println!(
        "          --incremental (serve unchanged grid cells from the store, skip simulation)"
    );
    println!("env:      NBL_THREADS=N overrides the worker count (default: all cores);");
    println!("          NBL_STORE_DIR / NBL_INCREMENTAL=1 mirror --store / --incremental");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = RunScale::Full;
    let mut out_path: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut bench_reps: Option<usize> = None;
    let mut bench_date: Option<String> = None;
    let mut store_dir: Option<String> = None;
    let mut incremental = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = RunScale::Quick,
            "--out" => out_path = it.next(),
            "--store" => {
                let Some(dir) = it.next() else {
                    eprintln!("--store needs a directory");
                    std::process::exit(2);
                };
                store_dir = Some(dir);
            }
            "--incremental" => incremental = true,
            "--bench-reps" => {
                let parsed = it.next().and_then(|v| v.parse::<usize>().ok());
                let Some(n) = parsed.filter(|n| *n >= 1) else {
                    eprintln!("--bench-reps needs a positive integer");
                    std::process::exit(2);
                };
                bench_reps = Some(n);
            }
            "--bench-date" => {
                let Some(d) = it.next() else {
                    eprintln!("--bench-date needs a date string (e.g. 2026-08-08)");
                    std::process::exit(2);
                };
                bench_date = Some(d);
            }
            "--csv" => {
                let Some(dir) = it.next() else {
                    eprintln!("--csv needs a directory");
                    std::process::exit(2);
                };
                if let Err(e) = experiments::enable_csv(dir.clone().into()) {
                    eprintln!("cannot create csv directory {dir}: {e}");
                    std::process::exit(2);
                }
            }
            "--json" => {
                let Some(dir) = it.next() else {
                    eprintln!("--json needs a directory");
                    std::process::exit(2);
                };
                if let Err(e) = experiments::enable_json(dir.clone().into()) {
                    eprintln!("cannot create json directory {dir}: {e}");
                    std::process::exit(2);
                }
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted
        .iter()
        .any(|w| w == "list" || w == "--list" || w == "help")
    {
        print_exhibits();
        return;
    }
    if wanted.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    for w in &wanted {
        if w != "all" && !EXHIBITS.iter().any(|e| e.name == *w) {
            eprintln!("unknown exhibit: {w}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);
    if bench_reps.is_some() || bench_date.is_some() {
        let defaults = experiments::bench_opts();
        experiments::set_bench_opts(experiments::BenchOpts {
            reps: bench_reps.unwrap_or(defaults.reps),
            date: bench_date.unwrap_or(defaults.date),
        });
    }
    if store_dir.is_some() || incremental {
        // Flags override the NBL_STORE_DIR / NBL_INCREMENTAL environment;
        // must be pinned before any exhibit builds the global engine.
        let env = nbl_sim::StoreSettings::from_env();
        nbl_sim::configure_store(nbl_sim::StoreSettings {
            dir: store_dir.map(Into::into).or(env.dir),
            incremental: incremental || env.incremental,
        });
    }

    let mut sinks: Vec<Box<dyn Write>> = vec![Box::new(std::io::stdout())];
    if let Some(path) = &out_path {
        match std::fs::File::create(path) {
            Ok(f) => sinks.push(Box::new(f)),
            Err(e) => {
                eprintln!("cannot create output file {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    let mut out = Tee(sinks);
    let mut timings: Vec<Timing> = Vec::new();
    let mut failures: Vec<(&'static str, experiments::ExhibitError)> = Vec::new();
    for e in EXHIBITS {
        if want(e.name) {
            if let Err(err) = timed(&mut timings, e.name, || (e.run)(&mut out, scale)) {
                eprintln!("exhibit {} failed {err}", e.name);
                failures.push((e.name, err));
            }
        }
    }
    print_summary(&mut out, &timings);
    if !failures.is_empty() {
        eprintln!("{} exhibit(s) failed:", failures.len());
        for (name, err) in &failures {
            eprintln!("  {name}: {err}");
        }
        std::process::exit(1);
    }
}

/// Writes to every sink (stdout + optional file).
struct Tee(Vec<Box<dyn Write>>);

impl Write for Tee {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        for s in &mut self.0 {
            s.write_all(buf)?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        for s in &mut self.0 {
            s.flush()?;
        }
        Ok(())
    }
}
