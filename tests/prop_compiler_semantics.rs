//! Property test: compilation preserves dataflow.
//!
//! The compiler reorders instructions, renames registers, and inserts
//! spill code. None of that may change *what is computed*: the value
//! stored by each store must be built from the same loads and operations
//! after compilation as before. We check this by evaluating both the IR
//! block (in source order) and the compiled machine block (in schedule
//! order) over symbolic values — structural expression hashes — and
//! comparing the sequence of stored expressions (the scheduler preserves
//! store order, so the sequences must match element-wise).
//!
//! This catches scheduling that breaks dependences, allocation that
//! assigns overlapping live ranges to one register, and spill code that
//! reloads the wrong slot — in one end-to-end property.

use nonblocking_loads::core::types::{LoadFormat, PhysReg, RegClass};
use nonblocking_loads::sched::compile::compile;
use nonblocking_loads::trace::ir::{
    AddrPattern, Block, BlockId, IrOp, PatternId, Program, ScriptNode, VirtReg,
};
use nonblocking_loads::trace::machine::MachineOp;
use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Structural expression hash: a value is identified by how it was
/// computed, not by where it lives.
fn node(tag: &str, parts: &[u64]) -> u64 {
    let mut h = DefaultHasher::new();
    tag.hash(&mut h);
    parts.hash(&mut h);
    h.finish()
}

/// Evaluates the IR block in source order; returns the stored expressions
/// in store order.
fn eval_ir(block: &Block) -> Vec<Option<u64>> {
    let mut vals: HashMap<VirtReg, u64> = HashMap::new();
    let mut stores = Vec::new();
    for op in &block.ops {
        match *op {
            IrOp::Load {
                dst,
                pattern,
                addr_src,
                ..
            } => {
                let addr = addr_src.map(|s| vals[&s]).unwrap_or(0);
                vals.insert(dst, node("load", &[u64::from(pattern.0), addr]));
            }
            IrOp::Store { data, .. } => {
                stores.push(data.map(|d| vals[&d]));
            }
            IrOp::Alu { dst, srcs } => {
                let parts: Vec<u64> = srcs.iter().flatten().map(|s| vals[s]).collect();
                vals.insert(dst, node("alu", &parts));
            }
            IrOp::Branch { .. } => {}
        }
    }
    stores
}

/// Evaluates the compiled machine block in schedule order; spill slots
/// (patterns beyond the original table) act as symbolic memory.
fn eval_machine(ops: &[MachineOp], original_patterns: usize) -> Vec<Option<u64>> {
    let mut regs: HashMap<PhysReg, u64> = HashMap::new();
    let mut spill_mem: HashMap<PatternId, u64> = HashMap::new();
    let mut stores = Vec::new();
    let is_spill = |p: PatternId| (p.0 as usize) >= original_patterns;
    for op in ops {
        match *op {
            MachineOp::Load {
                dst,
                pattern,
                addr_src,
                ..
            } => {
                let v = if is_spill(pattern) {
                    *spill_mem.get(&pattern).expect("reload before spill store")
                } else {
                    let addr = addr_src.map(|s| regs[&s]).unwrap_or(0);
                    node("load", &[u64::from(pattern.0), addr])
                };
                regs.insert(dst, v);
            }
            MachineOp::Store { pattern, data, .. } => {
                let v = data.map(|d| regs[&d]);
                if is_spill(pattern) {
                    spill_mem.insert(pattern, v.expect("spill stores carry data"));
                } else {
                    stores.push(v);
                }
            }
            MachineOp::Alu { dst, srcs } => {
                let parts: Vec<u64> = srcs.iter().flatten().map(|s| regs[&s]).collect();
                regs.insert(dst, node("alu", &parts));
            }
            MachineOp::Branch { .. } => {}
        }
    }
    stores
}

/// Random block without loop-carried registers (def-before-use, as the
/// builder guarantees). High ALU fan-in plus a forced store of every
/// "live" tail value maximizes the chance that a bad schedule or
/// allocation changes an observable output.
fn arb_block(max_ops: usize) -> impl Strategy<Value = Block> {
    let op = (0u8..5, 0usize..64, 0usize..64);
    proptest::collection::vec(op, 4..max_ops).prop_map(|raw| {
        let mut block = Block::default();
        let mut defined: Vec<VirtReg> = Vec::new();
        for (kind, a, b) in raw {
            let pick = |defined: &Vec<VirtReg>, k: usize| {
                if defined.is_empty() {
                    None
                } else {
                    Some(defined[k % defined.len()])
                }
            };
            match kind {
                0 | 3 => {
                    let dst = VirtReg(block.classes.len() as u32);
                    block.classes.push(RegClass::Fp);
                    block.ops.push(IrOp::Load {
                        dst,
                        pattern: PatternId((a % 3) as u32),
                        format: LoadFormat::DOUBLE,
                        addr_src: if kind == 3 { pick(&defined, b) } else { None },
                    });
                    defined.push(dst);
                }
                1 => {
                    block.ops.push(IrOp::Store {
                        pattern: PatternId((b % 3) as u32),
                        data: pick(&defined, a),
                        addr_src: None,
                    });
                }
                2 | 4 => {
                    let dst = VirtReg(block.classes.len() as u32);
                    block.classes.push(RegClass::Fp);
                    block.ops.push(IrOp::Alu {
                        dst,
                        srcs: [pick(&defined, a), pick(&defined, b)],
                    });
                    defined.push(dst);
                }
                _ => unreachable!(),
            }
        }
        // Make the final values observable.
        for k in 0..defined.len().min(6) {
            block.ops.push(IrOp::Store {
                pattern: PatternId(0),
                data: Some(defined[defined.len() - 1 - k]),
                addr_src: None,
            });
        }
        block.ops.push(IrOp::Branch { srcs: [None, None] });
        block
    })
}

fn program_around(block: Block) -> Program {
    Program {
        name: "prop".into(),
        patterns: vec![
            AddrPattern::Strided {
                base: 0x1000,
                elem_bytes: 8,
                stride: 1,
                length: 64,
            },
            AddrPattern::Gather {
                base: 0x8000,
                elem_bytes: 8,
                length: 64,
                seed: 1,
            },
            AddrPattern::Fixed { addr: 0x20000 },
        ],
        blocks: vec![block],
        script: vec![ScriptNode::Run {
            block: BlockId(0),
            times: 1,
        }],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The compiled block stores exactly the same expressions, in the same
    /// order, at every scheduled load latency.
    #[test]
    fn compilation_preserves_dataflow(block in arb_block(60), lat in 1u32..25) {
        let expected = eval_ir(&block);
        let program = program_around(block);
        let compiled = compile(&program, lat).expect("random blocks compile");
        let got = eval_machine(&compiled.blocks[0].ops, program.patterns.len());
        prop_assert_eq!(got, expected);
    }

    /// Dataflow preservation holds even under extreme register pressure
    /// (the fpppp workload is known to spill at long scheduled latencies),
    /// exercising the spill store/reload path end to end.
    #[test]
    fn spill_code_preserves_dataflow(lat in 2u32..25) {
        use nonblocking_loads::trace::workloads::{build, Scale};
        let program = build("fpppp", Scale::quick()).expect("fpppp exists");
        prop_assert!(program.blocks[0].carried.is_empty(), "eval assumes no carried registers");
        let expected = eval_ir(&program.blocks[0]);
        let compiled = compile(&program, lat).expect("fpppp compiles");
        prop_assert!(
            compiled.blocks[0].spill_ops > 0,
            "fpppp must spill at latency {lat}"
        );
        let got = eval_machine(&compiled.blocks[0].ops, program.patterns.len());
        prop_assert_eq!(got, expected);
    }
}
