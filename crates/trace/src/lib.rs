//! # nbl-trace — workloads, IR, and trace execution
//!
//! The paper drives its cache simulator with instrumented SPEC92 binaries;
//! this crate provides the equivalent substrate built from scratch:
//!
//! * [`ir`] — a small RISC-like IR (basic blocks over virtual registers,
//!   stateful address patterns, a loop-structure script);
//! * [`builder`] — fluent program construction for the generators;
//! * [`workloads`] — 18 synthetic SPEC92-archetype benchmark generators
//!   (see DESIGN.md for the substitution argument);
//! * [`machine`] — the compiled (scheduled + register-allocated) program
//!   form produced by `nbl-sched`;
//! * [`exec`] — the deterministic executor that turns a compiled program
//!   into a dynamic instruction stream for the processor models;
//! * [`dump`] — binary trace capture and replay (the long-address-trace
//!   tooling of the paper's infrastructure lineage);
//! * [`tape`] — a flat struct-of-arrays recording of the fully-resolved
//!   dynamic stream, materialized once per (benchmark, latency) pair and
//!   replayed across every hardware configuration of a sweep.

pub mod builder;
pub mod dump;
pub mod exec;
pub mod ir;
pub mod machine;
pub mod tape;
pub mod workloads;

pub use builder::ProgramBuilder;
pub use dump::{TraceReader, TraceWriter};
pub use exec::Executor;
pub use ir::{AddrPattern, Block, BlockId, IrOp, PatternId, Program, ScriptNode, VirtReg};
pub use machine::{CompiledProgram, CountingSink, InstSink, MachineBlock, MachineOp};
pub use tape::io::{TapeCodecError, TAPE_FORMAT_VERSION};
pub use tape::{MemOp, TapeKind, TraceTape};
