//! A file of discrete register MSHRs (Kroft-style, paper Fig. 1/2).
//!
//! This organization expresses the paper's whole restricted design space:
//!
//! * `mc=N` — at most `N` outstanding misses to the cache in total:
//!   `entries = N`, one explicit target field per MSHR,
//!   `max_outstanding_misses = N`.
//! * `fc=N` — at most `N` outstanding fetches, unlimited secondary misses:
//!   `entries = N`, unlimited target fields.
//! * `fs=N` — unlimited MSHRs but at most `N` in-flight fetches per cache
//!   set: `entries = Unlimited`, `max_fetches_per_set = N`.
//! * Fig. 14's implicit/explicit/hybrid sweep — vary `targets`.

use super::targets::{TargetPolicy, TargetStorage};
use super::{MissKind, MissRequest, MshrResponse, Rejection, TargetRecord};
use crate::geometry::CacheGeometry;
use crate::hash::FastMap;
use crate::limit::Limit;
use crate::types::BlockAddr;

/// Configuration of a [`RegisterMshrFile`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RegisterFileConfig {
    /// Number of MSHR entries — the maximum number of outstanding fetches.
    pub entries: Limit,
    /// Target-field layout of each entry.
    pub targets: TargetPolicy,
    /// Cap on total outstanding misses (primary + secondary), the paper's
    /// `mc=N` restriction.
    pub max_outstanding_misses: Limit,
    /// Cap on in-flight fetches per cache set, the paper's `fs=N`
    /// restriction.
    pub max_fetches_per_set: Limit,
}

impl Default for RegisterFileConfig {
    /// An effectively unrestricted file (useful as a starting point).
    fn default() -> Self {
        RegisterFileConfig {
            entries: Limit::Unlimited,
            targets: TargetPolicy::default(),
            max_outstanding_misses: Limit::Unlimited,
            max_fetches_per_set: Limit::Unlimited,
        }
    }
}

/// One in-flight entry.
#[derive(Debug, Clone)]
struct Entry {
    set: u32,
    targets: TargetStorage,
}

/// The dynamic state of a file of discrete register MSHRs.
#[derive(Debug, Clone)]
pub struct RegisterMshrFile {
    config: RegisterFileConfig,
    geometry: CacheGeometry,
    /// In-flight entries keyed by block address (the associative search of
    /// the comparators in Figs. 1 and 2).
    entries: FastMap<BlockAddr, Entry>,
    /// In-flight fetch count per set, maintained incrementally.
    per_set: FastMap<u32, u32>,
    /// Total waiting target records across all entries.
    total_misses: usize,
    /// Recycled target storages: every fill returns its entry's storage
    /// here and every primary miss takes one back, so a warm replay
    /// allocates a storage only while growing past its high-water mark.
    spare: Vec<TargetStorage>,
}

impl RegisterMshrFile {
    /// Creates an empty file.
    pub fn new(config: RegisterFileConfig, geometry: &CacheGeometry) -> RegisterMshrFile {
        RegisterMshrFile {
            config,
            geometry: *geometry,
            entries: FastMap::default(),
            per_set: FastMap::default(),
            total_misses: 0,
            spare: Vec::new(),
        }
    }

    /// The configuration this file was built with.
    pub fn config(&self) -> &RegisterFileConfig {
        &self.config
    }

    /// Empties the file back to its as-built state, keeping the entry
    /// maps' buckets and the recycled target storages for reuse.
    pub fn reset(&mut self) {
        for (_, mut entry) in self.entries.drain() {
            entry.targets.clear();
            self.spare.push(entry.targets);
        }
        self.per_set.clear();
        self.total_misses = 0;
    }

    /// Presents a load miss.
    pub fn try_load_miss(&mut self, req: &MissRequest) -> MshrResponse {
        // Every accepted miss consumes one miss "slot" regardless of kind.
        if !self
            .config
            .max_outstanding_misses
            .allows_one_more(self.total_misses)
        {
            return MshrResponse::Rejected(Rejection::MissLimit);
        }
        let record = TargetRecord {
            dest: req.dest,
            offset: req.offset,
            format: req.format,
        };
        if let Some(entry) = self.entries.get_mut(&req.block) {
            // Outstanding fetch for this block: try to merge (secondary miss).
            return match entry.targets.try_add(record) {
                Ok(()) => {
                    self.total_misses += 1;
                    MshrResponse::Accepted(MissKind::Secondary)
                }
                Err(reason) => MshrResponse::Rejected(reason),
            };
        }
        // New block: need a free MSHR and per-set headroom.
        if !self.config.entries.allows_one_more(self.entries.len()) {
            return MshrResponse::Rejected(Rejection::NoFreeMshr);
        }
        let in_set = self.per_set.get(&req.set).copied().unwrap_or(0) as usize;
        if !self.config.max_fetches_per_set.allows_one_more(in_set) {
            return MshrResponse::Rejected(Rejection::PerSetFetchLimit);
        }
        let mut targets = self
            .spare
            .pop()
            .unwrap_or_else(|| TargetStorage::new(self.config.targets, &self.geometry));
        match targets.try_add(record) {
            Ok(()) => {}
            Err(reason) => {
                self.spare.push(targets);
                return MshrResponse::Rejected(reason);
            }
        }
        self.entries.insert(
            req.block,
            Entry {
                set: req.set,
                targets,
            },
        );
        *self.per_set.entry(req.set).or_insert(0) += 1;
        self.total_misses += 1;
        MshrResponse::Accepted(MissKind::Primary)
    }

    /// Completes the fetch of `block`, returning all waiting targets.
    pub fn fill(&mut self, block: BlockAddr) -> Vec<TargetRecord> {
        let mut records = Vec::new();
        self.fill_into(block, &mut records);
        records
    }

    /// Completes the fetch of `block`, appending all waiting targets to
    /// `out` — the allocation-free twin of [`RegisterMshrFile::fill`]:
    /// the entry's target storage is recycled for the next primary miss
    /// instead of dropped.
    pub fn fill_into(&mut self, block: BlockAddr, out: &mut Vec<TargetRecord>) {
        let Some(mut entry) = self.entries.remove(&block) else {
            return;
        };
        let before = out.len();
        entry.targets.drain_into(out);
        self.total_misses -= out.len() - before;
        self.spare.push(entry.targets);
        debug_assert!(
            self.per_set.contains_key(&entry.set),
            "per-set count tracks entries"
        );
        if let Some(count) = self.per_set.get_mut(&entry.set) {
            *count -= 1;
            if *count == 0 {
                self.per_set.remove(&entry.set);
            }
        }
    }

    /// `true` if a fetch for `block` is outstanding. Probed on every
    /// access (before the tag array can report a hit), so the common
    /// nothing-in-flight case short-circuits before hashing.
    #[inline]
    pub fn is_in_transit(&self, block: BlockAddr) -> bool {
        !self.entries.is_empty() && self.entries.contains_key(&block)
    }

    /// Number of in-flight fetches.
    #[inline]
    pub fn outstanding_fetches(&self) -> usize {
        self.entries.len()
    }

    /// Number of waiting target records (outstanding misses).
    #[inline]
    pub fn outstanding_misses(&self) -> usize {
        self.total_misses
    }

    /// In-flight fetches mapping to `set`.
    #[inline]
    pub fn fetches_in_set(&self, set: u32) -> usize {
        self.per_set.get(&set).copied().unwrap_or(0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Dest, LoadFormat, PhysReg};

    fn geom() -> CacheGeometry {
        CacheGeometry::baseline()
    }

    fn req(block: u64, set: u32, offset: u32, reg: u8) -> MissRequest {
        MissRequest {
            block: BlockAddr(block),
            set,
            offset,
            dest: Dest::Reg(PhysReg::int(reg)),
            format: LoadFormat::WORD,
        }
    }

    fn mc(n: u32) -> RegisterFileConfig {
        RegisterFileConfig {
            entries: Limit::Finite(n),
            targets: TargetPolicy::explicit(Limit::Finite(1)),
            max_outstanding_misses: Limit::Finite(n),
            max_fetches_per_set: Limit::Unlimited,
        }
    }

    fn fc(n: u32) -> RegisterFileConfig {
        RegisterFileConfig {
            entries: Limit::Finite(n),
            targets: TargetPolicy::explicit(Limit::Unlimited),
            max_outstanding_misses: Limit::Unlimited,
            max_fetches_per_set: Limit::Unlimited,
        }
    }

    fn fs(n: u32) -> RegisterFileConfig {
        RegisterFileConfig {
            entries: Limit::Unlimited,
            targets: TargetPolicy::explicit(Limit::Unlimited),
            max_outstanding_misses: Limit::Unlimited,
            max_fetches_per_set: Limit::Finite(n),
        }
    }

    #[test]
    fn hit_under_miss_allows_exactly_one_miss() {
        let mut f = RegisterMshrFile::new(mc(1), &geom());
        assert_eq!(
            f.try_load_miss(&req(10, 10, 0, 1)),
            MshrResponse::Accepted(MissKind::Primary)
        );
        // A second miss to any block stalls.
        assert_eq!(
            f.try_load_miss(&req(11, 11, 0, 2)),
            MshrResponse::Rejected(Rejection::MissLimit)
        );
        // Even a secondary to the same block stalls under mc=1.
        assert_eq!(
            f.try_load_miss(&req(10, 10, 8, 3)),
            MshrResponse::Rejected(Rejection::MissLimit)
        );
        // After the fill both are possible again.
        let targets = f.fill(BlockAddr(10));
        assert_eq!(targets.len(), 1);
        assert_eq!(f.outstanding_misses(), 0);
        assert!(f.try_load_miss(&req(11, 11, 0, 2)).is_accepted());
    }

    #[test]
    fn mc2_allows_two_misses_any_mix() {
        let mut f = RegisterMshrFile::new(mc(2), &geom());
        // Two primaries.
        assert_eq!(
            f.try_load_miss(&req(1, 1, 0, 1)),
            MshrResponse::Accepted(MissKind::Primary)
        );
        assert_eq!(
            f.try_load_miss(&req(2, 2, 0, 2)),
            MshrResponse::Accepted(MissKind::Primary)
        );
        assert_eq!(
            f.try_load_miss(&req(3, 3, 0, 3)),
            MshrResponse::Rejected(Rejection::MissLimit)
        );
        f.fill(BlockAddr(1));
        f.fill(BlockAddr(2));
        // Or one primary + one secondary to a *different word* (the single
        // explicit field is taken by the primary, so same-entry merges need a
        // second MSHR... but mc=2 entries each have 1 field, so the secondary
        // to the same block conflicts on fields).
        assert_eq!(
            f.try_load_miss(&req(5, 5, 0, 1)),
            MshrResponse::Accepted(MissKind::Primary)
        );
        assert_eq!(
            f.try_load_miss(&req(5, 5, 8, 2)),
            MshrResponse::Rejected(Rejection::TargetConflict)
        );
    }

    #[test]
    fn fc1_merges_unlimited_secondaries_single_fetch() {
        let mut f = RegisterMshrFile::new(fc(1), &geom());
        assert_eq!(
            f.try_load_miss(&req(7, 7, 0, 1)),
            MshrResponse::Accepted(MissKind::Primary)
        );
        for i in 0..10u8 {
            assert_eq!(
                f.try_load_miss(&req(7, 7, u32::from(i) % 32, i)),
                MshrResponse::Accepted(MissKind::Secondary)
            );
        }
        assert_eq!(f.outstanding_fetches(), 1);
        assert_eq!(f.outstanding_misses(), 11);
        // A second block has no MSHR.
        assert_eq!(
            f.try_load_miss(&req(8, 8, 0, 2)),
            MshrResponse::Rejected(Rejection::NoFreeMshr)
        );
        let targets = f.fill(BlockAddr(7));
        assert_eq!(targets.len(), 11);
        assert_eq!(f.outstanding_misses(), 0);
    }

    #[test]
    fn fc2_supports_two_fetches() {
        let mut f = RegisterMshrFile::new(fc(2), &geom());
        assert!(f.try_load_miss(&req(1, 1, 0, 1)).is_accepted());
        assert!(f.try_load_miss(&req(2, 2, 0, 2)).is_accepted());
        assert_eq!(
            f.try_load_miss(&req(3, 3, 0, 3)),
            MshrResponse::Rejected(Rejection::NoFreeMshr)
        );
        // Secondaries to both in-flight blocks still merge.
        assert_eq!(
            f.try_load_miss(&req(1, 1, 8, 4)),
            MshrResponse::Accepted(MissKind::Secondary)
        );
        assert_eq!(
            f.try_load_miss(&req(2, 2, 8, 5)),
            MshrResponse::Accepted(MissKind::Secondary)
        );
    }

    #[test]
    fn per_set_fetch_limits() {
        let mut f = RegisterMshrFile::new(fs(1), &geom());
        // Blocks 0x100 and 0x200 map to the same set in an 8KB/32B cache
        // (256 sets): block addresses 0x100 and 0x200 share set 0.
        assert!(f.try_load_miss(&req(0x100, 0, 0, 1)).is_accepted());
        assert_eq!(
            f.try_load_miss(&req(0x200, 0, 0, 2)),
            MshrResponse::Rejected(Rejection::PerSetFetchLimit)
        );
        // A different set is fine.
        assert!(f.try_load_miss(&req(0x101, 1, 0, 3)).is_accepted());
        assert_eq!(f.fetches_in_set(0), 1);
        assert_eq!(f.fetches_in_set(1), 1);
        // After the fill the set frees up.
        f.fill(BlockAddr(0x100));
        assert_eq!(f.fetches_in_set(0), 0);
        assert!(f.try_load_miss(&req(0x200, 0, 0, 2)).is_accepted());
    }

    #[test]
    fn fs2_allows_two_conflicting_fetches() {
        let mut f = RegisterMshrFile::new(fs(2), &geom());
        assert!(f.try_load_miss(&req(0x100, 0, 0, 1)).is_accepted());
        assert!(f.try_load_miss(&req(0x200, 0, 0, 2)).is_accepted());
        assert_eq!(
            f.try_load_miss(&req(0x300, 0, 0, 3)),
            MshrResponse::Rejected(Rejection::PerSetFetchLimit)
        );
    }

    #[test]
    fn fill_of_unknown_block_is_empty() {
        let mut f = RegisterMshrFile::new(fc(1), &geom());
        assert!(f.fill(BlockAddr(99)).is_empty());
    }

    #[test]
    fn unrestricted_file_tracks_counts() {
        let mut f = RegisterMshrFile::new(RegisterFileConfig::default(), &geom());
        for b in 0..20u64 {
            assert!(f
                .try_load_miss(&req(b, (b % 256) as u32, 0, (b % 32) as u8))
                .is_accepted());
        }
        assert_eq!(f.outstanding_fetches(), 20);
        assert_eq!(f.outstanding_misses(), 20);
        assert!(f.is_in_transit(BlockAddr(5)));
        for b in 0..20u64 {
            f.fill(BlockAddr(b));
        }
        assert_eq!(f.outstanding_fetches(), 0);
        assert_eq!(f.outstanding_misses(), 0);
        assert!(!f.is_in_transit(BlockAddr(5)));
    }

    #[test]
    fn implicit_targets_stall_on_word_reuse_within_file() {
        let cfg = RegisterFileConfig {
            entries: Limit::Finite(2),
            targets: TargetPolicy::implicit_sub_blocks(4),
            max_outstanding_misses: Limit::Unlimited,
            max_fetches_per_set: Limit::Unlimited,
        };
        let mut f = RegisterMshrFile::new(cfg, &geom());
        assert!(f.try_load_miss(&req(1, 1, 0, 1)).is_accepted());
        assert_eq!(
            f.try_load_miss(&req(1, 1, 4, 2)),
            MshrResponse::Rejected(Rejection::TargetConflict)
        );
        assert_eq!(
            f.try_load_miss(&req(1, 1, 8, 2)),
            MshrResponse::Accepted(MissKind::Secondary)
        );
    }
}
