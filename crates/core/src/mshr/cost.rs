//! Hardware storage-cost model for MSHR organizations.
//!
//! Reproduces the bit-count arithmetic of the paper's §2 and §4.1:
//!
//! * basic implicitly addressed MSHR, 32-byte line, 8-byte words:
//!   `(4×12) + 44 = 92` bits (Fig. 1);
//! * implicit with 4-byte granularity (8 sub-blocks): `44 + 96 = 140` bits;
//! * explicitly addressed, 4 fields: `44 + (4×17) = 112` bits (Fig. 2);
//! * hybrid 2 sub-blocks × 2 fields: `44 + (4×16) = 106` bits (Fig. 14 —
//!   one address bit per field is supplied by the implicit sub-block
//!   position).
//!
//! Each register MSHR additionally carries one block-address comparator;
//! the inverted MSHR carries one comparator **per destination entry**
//! (it is built "with the same basic circuits as a fully-associative TLB").

use super::inverted::InvertedConfig;
use super::targets::TargetPolicy;
use crate::geometry::CacheGeometry;
use crate::limit::Limit;
use crate::types::Addr;

/// Field-width assumptions of the cost model (paper Figs. 1–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrCostModel {
    /// Physical address bits (paper: 48).
    pub phys_addr_bits: u32,
    /// Destination register address width: 5 index bits + 1 int/fp bit.
    pub dest_bits: u32,
    /// Formatting information width (load width, sign extension, byte
    /// address bits; paper: "~5").
    pub format_bits: u32,
}

impl Default for MshrCostModel {
    fn default() -> Self {
        MshrCostModel {
            phys_addr_bits: Addr::PHYSICAL_BITS,
            dest_bits: 6,
            format_bits: 5,
        }
    }
}

/// Storage cost of one register MSHR, in bits, with comparator counted
/// separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrCost {
    /// Total storage bits for one MSHR entry.
    pub bits: u64,
    /// Width of the associative block-address comparator.
    pub comparator_bits: u32,
    /// Number of comparators (1 for a register MSHR; entry count for the
    /// inverted organization).
    pub comparators: u32,
}

impl MshrCostModel {
    /// Bits of block request address that must be stored: physical bits
    /// minus the in-block offset bits (paper: 48 − 5 = 43 for 32-byte
    /// lines).
    pub fn block_addr_bits(&self, geometry: &CacheGeometry) -> u32 {
        self.phys_addr_bits - geometry.block_bits()
    }

    /// Per-field storage: valid bit + destination + format, plus the
    /// explicit address-in-sub-block bits when a sub-block holds more than
    /// one field. (A purely positional field needs no address bits:
    /// its position *is* the address.)
    pub fn field_bits(&self, policy: TargetPolicy, geometry: &CacheGeometry) -> u32 {
        let base = 1 + self.dest_bits + self.format_bits;
        match policy.fields_per_sub_block() {
            Limit::Finite(1) => base,
            _ => {
                let sub_block_addr_bits =
                    geometry.block_bits() - policy.sub_blocks().trailing_zeros();
                base + sub_block_addr_bits
            }
        }
    }

    /// Total storage cost of one register MSHR under `policy`.
    ///
    /// Returns `None` for idealized unlimited-field policies, which have no
    /// finite hardware realization (the paper's `fc=` curves assume one and
    /// Fig. 14 quantifies what finite approximations cost).
    pub fn register_mshr(
        &self,
        policy: TargetPolicy,
        geometry: &CacheGeometry,
    ) -> Option<MshrCost> {
        let fields = policy.total_fields().finite()?;
        let bits = u64::from(self.block_addr_bits(geometry)) + 1 // block valid bit
            + u64::from(fields) * u64::from(self.field_bits(policy, geometry));
        Some(MshrCost {
            bits,
            comparator_bits: self.block_addr_bits(geometry),
            comparators: 1,
        })
    }

    /// Storage cost of one inverted-MSHR destination entry (Fig. 3: block
    /// request address + valid + format + address-in-block), and the total
    /// across a configuration.
    pub fn inverted_entry_bits(&self, geometry: &CacheGeometry) -> u64 {
        u64::from(self.block_addr_bits(geometry))
            + 1
            + u64::from(self.format_bits)
            + u64::from(geometry.block_bits())
    }

    /// Total inverted-MSHR cost: per-entry storage and one comparator per
    /// entry, plus the match-entry encoder (not counted in bits).
    pub fn inverted(&self, config: InvertedConfig, geometry: &CacheGeometry) -> MshrCost {
        let entries = config.total_entries() as u64;
        MshrCost {
            bits: entries * self.inverted_entry_bits(geometry),
            comparator_bits: self.block_addr_bits(geometry),
            comparators: entries as u32,
        }
    }

    /// Storage overhead of in-cache MSHR storage: one transit bit per cache
    /// line (the MSHR fields live in the data array for free).
    pub fn in_cache_bits(&self, geometry: &CacheGeometry) -> u64 {
        geometry.num_lines()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MshrCostModel {
        MshrCostModel::default()
    }

    fn geom() -> CacheGeometry {
        CacheGeometry::baseline() // 32-byte lines => 5 offset bits
    }

    #[test]
    fn block_addr_bits_match_paper() {
        assert_eq!(model().block_addr_bits(&geom()), 43);
    }

    #[test]
    fn basic_implicit_mshr_is_92_bits() {
        // Paper Fig. 1: (4×12) + 44 = 92 bits.
        let cost = model()
            .register_mshr(TargetPolicy::implicit_sub_blocks(4), &geom())
            .unwrap();
        assert_eq!(cost.bits, 92);
        assert_eq!(cost.comparator_bits, 43);
        assert_eq!(cost.comparators, 1);
    }

    #[test]
    fn implicit_4byte_granularity_is_140_bits() {
        // Paper §2.2 / §4.1: doubling word records to 8 makes 44 + 96 = 140.
        let cost = model()
            .register_mshr(TargetPolicy::implicit_sub_blocks(8), &geom())
            .unwrap();
        assert_eq!(cost.bits, 140);
    }

    #[test]
    fn explicit_4_field_mshr_is_112_bits() {
        // Paper Fig. 2 / §4.1: 44 + (4×17) = 112.
        let cost = model()
            .register_mshr(TargetPolicy::explicit(Limit::Finite(4)), &geom())
            .unwrap();
        assert_eq!(cost.bits, 112);
    }

    #[test]
    fn hybrid_2x2_is_108_bits() {
        // Paper §4.1 prints "44+(4×16)=106", but 44 + 4×16 is 108 — the
        // total in the paper is a typo; its own per-field arithmetic (one
        // address bit saved per field, 16 bits/field) gives 108.
        let cost = model()
            .register_mshr(TargetPolicy::hybrid(2, 2), &geom())
            .unwrap();
        assert_eq!(cost.bits, 108);
    }

    #[test]
    fn unlimited_fields_have_no_finite_cost() {
        assert!(model()
            .register_mshr(TargetPolicy::explicit(Limit::Unlimited), &geom())
            .is_none());
    }

    #[test]
    fn inverted_entry_layout_matches_fig3() {
        // Fig. 3 row: 43 + 1 + ~5 + 5 = 54 bits per destination.
        assert_eq!(model().inverted_entry_bits(&geom()), 54);
        let cost = model().inverted(InvertedConfig::typical(), &geom());
        assert_eq!(
            cost.comparators as usize,
            InvertedConfig::typical().total_entries()
        );
        assert_eq!(
            cost.bits,
            54 * InvertedConfig::typical().total_entries() as u64
        );
    }

    #[test]
    fn in_cache_overhead_is_one_bit_per_line() {
        assert_eq!(model().in_cache_bits(&geom()), 256);
        let big = CacheGeometry::direct_mapped(64 * 1024, 32).unwrap();
        assert_eq!(model().in_cache_bits(&big), 2048);
    }

    #[test]
    fn cost_ordering_of_fig14_near_optimal_points() {
        // implicit-8 (140) > explicit-4 (112) > hybrid-2x2 (106).
        let m = model();
        let g = geom();
        let imp = m
            .register_mshr(TargetPolicy::implicit_sub_blocks(8), &g)
            .unwrap()
            .bits;
        let exp = m
            .register_mshr(TargetPolicy::explicit(Limit::Finite(4)), &g)
            .unwrap()
            .bits;
        let hyb = m
            .register_mshr(TargetPolicy::hybrid(2, 2), &g)
            .unwrap()
            .bits;
        assert!(imp > exp && exp > hyb);
    }

    #[test]
    fn sixteen_byte_lines_shrink_fields() {
        let g16 = CacheGeometry::direct_mapped(8 * 1024, 16).unwrap();
        // 48-4 = 44 block addr bits; explicit field = 12 + 4 = 16.
        assert_eq!(model().block_addr_bits(&g16), 44);
        let cost = model()
            .register_mshr(TargetPolicy::explicit(Limit::Finite(4)), &g16)
            .unwrap();
        assert_eq!(cost.bits, 44 + 1 + 4 * 16);
    }
}
