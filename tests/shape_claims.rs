//! Integration tests asserting the paper's qualitative claims
//! (DESIGN.md §6) end to end: workload generation → compilation →
//! simulation under the named hardware configurations.
//!
//! These use a mid-size workload scale: big enough that steady-state
//! behaviour dominates, small enough to keep the suite fast.

use nonblocking_loads::core::geometry::CacheGeometry;
use nonblocking_loads::sim::config::{HwConfig, SimConfig};
use nonblocking_loads::sim::driver::{run_program, RunResult};
use nonblocking_loads::sim::sweep::{latency_sweep, penalty_sweep};
use nonblocking_loads::trace::workloads::{build, Scale, INTEGER};

fn scale() -> Scale {
    Scale {
        instr_target: 120_000,
    }
}

fn run(bench: &str, cfg: &SimConfig) -> RunResult {
    let p = build(bench, scale()).expect("known benchmark");
    run_program(&p, cfg).expect("workloads compile")
}

fn baseline(hw: HwConfig) -> SimConfig {
    SimConfig::baseline(hw)
}

/// Claim 1: the configuration lattice is ordered at latency 10:
/// mc=0+wma ≥ mc=0 ≥ mc=1 ≥ fc=1 ≥ fc=2 ≥ unrestricted, and
/// mc=1 ≥ mc=2 ≥ unrestricted.
#[test]
fn config_lattice_ordering() {
    for bench in ["doduc", "tomcatv", "su2cor", "xlisp"] {
        let m = |hw: HwConfig| run(bench, &baseline(hw)).mcpi;
        let wma = m(HwConfig::Mc0Wma);
        let mc0 = m(HwConfig::Mc0);
        let mc1 = m(HwConfig::Mc(1));
        let mc2 = m(HwConfig::Mc(2));
        let fc1 = m(HwConfig::Fc(1));
        let fc2 = m(HwConfig::Fc(2));
        let inf = m(HwConfig::NoRestrict);
        let tol = 1.02; // hardware with strictly more capability may tie
        assert!(wma * tol >= mc0, "{bench}: wma {wma} < mc0 {mc0}");
        assert!(mc0 * tol >= mc1, "{bench}: mc0 {mc0} < mc1 {mc1}");
        assert!(mc1 * tol >= fc1, "{bench}: mc1 {mc1} < fc1 {fc1}");
        assert!(fc1 * tol >= fc2, "{bench}: fc1 {fc1} < fc2 {fc2}");
        assert!(fc2 * tol >= inf, "{bench}: fc2 {fc2} < inf {inf}");
        assert!(mc1 * tol >= mc2, "{bench}: mc1 {mc1} < mc2 {mc2}");
        assert!(mc2 * tol >= inf, "{bench}: mc2 {mc2} < inf {inf}");
    }
}

/// Claim 2: for doduc, two primary misses in flight (`mc=2`) beat one
/// fetch with unlimited secondaries (`fc=1`) — the paper's headline
/// observation about this benchmark.
#[test]
fn doduc_prefers_two_primaries_over_unlimited_secondaries() {
    let mc2 = run("doduc", &baseline(HwConfig::Mc(2))).mcpi;
    let fc1 = run("doduc", &baseline(HwConfig::Fc(1))).mcpi;
    assert!(mc2 < fc1, "mc=2 ({mc2}) should beat fc=1 ({fc1}) on doduc");
}

/// Claim 3: at a scheduled load latency of 1 the lockup-free
/// implementations nearly coincide (uses sit right after loads, so
/// there is rarely more than one outstanding miss to differentiate them).
#[test]
fn lockup_free_configs_converge_at_latency_one() {
    for bench in ["eqntott", "xlisp", "compress"] {
        let m = |hw: HwConfig| run(bench, &baseline(hw).at_latency(1)).mcpi;
        let mc1 = m(HwConfig::Mc(1));
        let inf = m(HwConfig::NoRestrict);
        assert!(
            mc1 <= inf * 1.20,
            "{bench}: at latency 1, mc=1 ({mc1}) should be within 20% of unrestricted ({inf})"
        );
    }
}

/// Claim 4: integer benchmarks get almost everything from hit-under-miss;
/// FP benchmarks do not.
#[test]
fn integer_benchmarks_are_satisfied_by_hit_under_miss() {
    for bench in INTEGER {
        let mc1 = run(bench, &baseline(HwConfig::Mc(1))).mcpi;
        let inf = run(bench, &baseline(HwConfig::NoRestrict)).mcpi;
        assert!(
            mc1 <= inf * 1.6,
            "{bench}: mc=1 ({mc1}) should be near unrestricted ({inf})"
        );
    }
    for bench in ["tomcatv", "su2cor", "fpppp"] {
        let mc1 = run(bench, &baseline(HwConfig::Mc(1))).mcpi;
        let inf = run(bench, &baseline(HwConfig::NoRestrict)).mcpi;
        assert!(
            mc1 >= inf * 3.0,
            "{bench}: hit-under-miss ({mc1}) should leave big gains vs unrestricted ({inf})"
        );
    }
}

/// Claim 5: the structural-hazard share of the MCPI grows with the
/// scheduled load latency (Fig. 7) for restricted organizations.
#[test]
fn structural_share_grows_with_latency() {
    let lo = run("doduc", &baseline(HwConfig::Mc(1)).at_latency(1));
    let hi = run("doduc", &baseline(HwConfig::Mc(1)).at_latency(10));
    assert!(
        hi.structural_fraction > lo.structural_fraction,
        "structural share should grow: {} -> {}",
        lo.structural_fraction,
        hi.structural_fraction
    );
    // And the unrestricted cache never stalls structurally.
    let inf = run("doduc", &baseline(HwConfig::NoRestrict).at_latency(10));
    assert_eq!(inf.structural_stalls, 0);
    assert_eq!(inf.structural_stall_misses, 0);
}

/// Claim 6: a fully associative cache removes xlisp's conflict misses —
/// lower MCPI, same configuration ordering.
#[test]
fn fully_associative_cache_helps_xlisp() {
    let fa = CacheGeometry::fully_associative(8 * 1024, 32).unwrap();
    let dm_mc1 = run("xlisp", &baseline(HwConfig::Mc(1))).mcpi;
    let fa_mc1 = run("xlisp", &baseline(HwConfig::Mc(1)).with_geometry(fa)).mcpi;
    let fa_inf = run("xlisp", &baseline(HwConfig::NoRestrict).with_geometry(fa)).mcpi;
    assert!(
        fa_mc1 < dm_mc1 / 1.5,
        "associativity should cut xlisp's MCPI: DM {dm_mc1} vs FA {fa_mc1}"
    );
    assert!(fa_mc1 >= fa_inf * 0.999, "ordering maintained under FA");
}

/// Claim 6b: a 64 KB cache scales doduc's MCPI down substantially while
/// preserving the curve ordering — the paper's "remarkably similar graphs"
/// observation (Fig. 16).
#[test]
fn large_cache_scales_but_preserves_ordering() {
    let big = CacheGeometry::direct_mapped(64 * 1024, 32).unwrap();
    let small_inf = run("doduc", &baseline(HwConfig::NoRestrict)).mcpi;
    let big_inf = run("doduc", &baseline(HwConfig::NoRestrict).with_geometry(big)).mcpi;
    let big_mc1 = run("doduc", &baseline(HwConfig::Mc(1)).with_geometry(big)).mcpi;
    let big_mc2 = run("doduc", &baseline(HwConfig::Mc(2)).with_geometry(big)).mcpi;
    assert!(
        big_inf < small_inf / 2.0,
        "64KB should cut MCPI: {small_inf} -> {big_inf}"
    );
    assert!(
        big_mc1 > big_mc2 && big_mc2 >= big_inf,
        "ordering preserved at 64KB"
    );
    assert!(
        big_mc1 > big_inf * 1.5,
        "aggressive organizations still pay off at 64KB: mc1 {big_mc1} vs inf {big_inf}"
    );
}

/// Claim 7: su2cor's same-set conflict fetches make per-set fetch limits
/// expensive: fs=1 ≫ fs=2 ≥ unrestricted (Fig. 15).
#[test]
fn su2cor_needs_multiple_fetches_per_set() {
    let fs1 = run("su2cor", &baseline(HwConfig::Fs(1))).mcpi;
    let fs2 = run("su2cor", &baseline(HwConfig::Fs(2))).mcpi;
    let inf = run("su2cor", &baseline(HwConfig::NoRestrict)).mcpi;
    assert!(
        fs1 > fs2 * 2.0,
        "fs=1 ({fs1}) should be far worse than fs=2 ({fs2})"
    );
    assert!(
        fs2 >= inf * 0.999,
        "fs=2 ({fs2}) at least unrestricted ({inf})"
    );
    // In-cache MSHR storage behaves like fs=1 (one fetch per line), plus
    // the extra misses of claiming the victim line at miss time.
    let incache = run("su2cor", &baseline(HwConfig::InCache)).mcpi;
    assert!(
        incache > fs2,
        "in-cache storage ({incache}) suffers like fs=1 ({fs1})"
    );
}

/// Claim 8: blocking MCPI is linear in the miss penalty; non-blocking
/// MCPI grows super-linearly as overlap capacity exhausts (Fig. 18).
#[test]
fn penalty_scaling_linear_for_blocking_superlinear_for_nonblocking() {
    let p = build("tomcatv", scale()).unwrap();
    let base = SimConfig::baseline(HwConfig::NoRestrict);
    let sweep = penalty_sweep(
        &p,
        &base,
        &[HwConfig::Mc0, HwConfig::NoRestrict],
        &[8, 16, 32],
    )
    .unwrap();
    let m = |c: &str, pen: u32| sweep.at(c, pen).unwrap().mcpi;
    // Blocking: strictly proportional.
    assert!((m("mc=0", 16) / m("mc=0", 8) - 2.0).abs() < 0.05);
    assert!((m("mc=0", 32) / m("mc=0", 16) - 2.0).abs() < 0.05);
    // Unrestricted: the 16 -> 32 doubling costs far more than 2x.
    let growth = m("no restrict", 32) / m("no restrict", 16).max(1e-9);
    assert!(growth > 2.5, "super-linear growth expected, got {growth}");
}

/// Claim 9: MCPI decreases (weakly) with scheduled load latency for the
/// unrestricted cache on a stream benchmark — the compiler's latency
/// scheduling is what unlocks the hardware (the paper's closing point).
#[test]
fn scheduling_for_misses_unlocks_the_hardware() {
    let p = build("tomcatv", scale()).unwrap();
    let base = SimConfig::baseline(HwConfig::NoRestrict);
    let sweep = latency_sweep(&p, &base, &[HwConfig::NoRestrict], &[1, 2, 3, 6, 10, 20]).unwrap();
    let curve = sweep.curve(0);
    assert!(
        curve[5] < curve[0] / 3.0,
        "latency-20 schedules should hide most of what latency-1 exposes: {curve:?}"
    );
    for w in curve.windows(2) {
        assert!(
            w[1] <= w[0] * 1.10,
            "tomcatv's curve decreases near-monotonically: {curve:?}"
        );
    }
}

/// Claim 10: the Fig. 14 target-layout gradient — one target field per
/// MSHR suffers on doduc's clustered misses; four explicit fields or
/// word-granular implicit fields recover the unrestricted MCPI.
#[test]
fn target_layout_gradient() {
    use nonblocking_loads::core::limit::Limit;
    use nonblocking_loads::core::mshr::TargetPolicy;
    let m = |p: TargetPolicy| run("doduc", &baseline(HwConfig::Targets(p))).mcpi;
    let one = m(TargetPolicy::explicit(Limit::Finite(1)));
    let four = m(TargetPolicy::explicit(Limit::Finite(4)));
    let implicit4 = m(TargetPolicy::implicit_sub_blocks(4));
    let inf = run("doduc", &baseline(HwConfig::NoRestrict)).mcpi;
    assert!(
        one > four,
        "a single target field must cost something: {one} vs {four}"
    );
    assert!(four <= inf * 1.05, "four explicit fields ≈ unrestricted");
    assert!(
        implicit4 <= inf * 1.05,
        "word-granular implicit fields ≈ unrestricted"
    );
}
