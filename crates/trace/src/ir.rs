//! The RISC-like intermediate representation that workload generators emit
//! and the compiler model (`nbl-sched`) consumes.
//!
//! A [`Program`] is a set of basic [`Block`]s over *virtual* registers plus
//! a [`ScriptNode`] tree describing the dynamic loop structure (which block
//! runs how many times, in what nesting). Memory operations do not carry
//! literal addresses; they reference an [`AddrPattern`] whose state advances
//! every time the operation executes — the same separation the paper's
//! object-code instrumentation achieves by calling a memory-model procedure
//! before every emulated load and store.

use nbl_core::types::{LoadFormat, RegClass};
use std::fmt;

/// A virtual register (SSA-ish temporary) local to one [`Block`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtReg(pub u32);

impl fmt::Display for VirtReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Index of an [`AddrPattern`] in the program's pattern table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatternId(pub u32);

/// Index of a [`Block`] in the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockId(pub u32);

/// A stateful address generator attached to a memory operation.
///
/// Patterns are deterministic functions of their state and seed, so a
/// program replays identically across runs and configurations — only the
/// *code schedule* (produced by `nbl-sched` for a given load latency)
/// changes the dynamic instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrPattern {
    /// Sequential walk: element `i`, `i+stride`, ... over `length` elements
    /// of `elem_bytes` each, wrapping. Models array streaming (tomcatv's
    /// mesh rows, swm256's grids).
    Strided {
        /// First byte of the array.
        base: u64,
        /// Element size in bytes.
        elem_bytes: u32,
        /// Elements advanced per execution (may be negative).
        stride: i64,
        /// Array length in elements.
        length: u64,
    },
    /// Pseudo-random element within a region (hash probes, scattered
    /// references). Deterministic LCG stream from `seed`.
    Gather {
        /// First byte of the region.
        base: u64,
        /// Element size in bytes.
        elem_bytes: u32,
        /// Region length in elements.
        length: u64,
        /// LCG seed.
        seed: u64,
    },
    /// Pointer chase over a shuffled ring of `nodes` nodes of `node_bytes`
    /// each (xlisp's cons heap). The executor materializes a single-cycle
    /// permutation from `seed`; each execution steps to the successor and
    /// yields `base + node*node_bytes + field_offset`.
    Chase {
        /// First byte of the node arena.
        base: u64,
        /// Node size in bytes.
        node_bytes: u32,
        /// Number of nodes in the ring.
        nodes: u64,
        /// Byte offset of the referenced field within the node.
        field_offset: u32,
        /// Permutation seed.
        seed: u64,
    },
    /// A fixed address (spill slots, globals, scalar locals).
    Fixed {
        /// The byte address.
        addr: u64,
    },
}

/// One IR operation over virtual registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IrOp {
    /// Load the next address of `pattern` into `dst`. If `addr_src` is
    /// given, the load's address computation reads that register (a
    /// dependent load — e.g. pointer chasing sets `addr_src` to the
    /// previous pointer value).
    Load {
        /// Destination.
        dst: VirtReg,
        /// Address stream.
        pattern: PatternId,
        /// Access width / sign extension.
        format: LoadFormat,
        /// Register the effective address depends on, if any.
        addr_src: Option<VirtReg>,
    },
    /// Store to the next address of `pattern`. Reads `data` (the stored
    /// value) and optionally `addr_src`.
    Store {
        /// Address stream.
        pattern: PatternId,
        /// Value stored, if register-carried.
        data: Option<VirtReg>,
        /// Register the effective address depends on, if any.
        addr_src: Option<VirtReg>,
    },
    /// Single-cycle computation `dst <- op(srcs)`.
    Alu {
        /// Destination.
        dst: VirtReg,
        /// Operands.
        srcs: [Option<VirtReg>; 2],
    },
    /// A branch (or compare-and-branch): reads registers, writes nothing,
    /// costs one cycle under perfect prediction.
    Branch {
        /// Operands.
        srcs: [Option<VirtReg>; 2],
    },
}

impl IrOp {
    /// The virtual register written, if any.
    pub fn dst(&self) -> Option<VirtReg> {
        match self {
            IrOp::Load { dst, .. } | IrOp::Alu { dst, .. } => Some(*dst),
            IrOp::Store { .. } | IrOp::Branch { .. } => None,
        }
    }

    /// The virtual registers read.
    pub fn srcs(&self) -> Vec<VirtReg> {
        match self {
            IrOp::Load { addr_src, .. } => addr_src.iter().copied().collect(),
            IrOp::Store { data, addr_src, .. } => {
                data.iter().chain(addr_src.iter()).copied().collect()
            }
            IrOp::Alu { srcs, .. } | IrOp::Branch { srcs } => {
                srcs.iter().flatten().copied().collect()
            }
        }
    }

    /// `true` for loads.
    pub fn is_load(&self) -> bool {
        matches!(self, IrOp::Load { .. })
    }

    /// `true` for stores.
    pub fn is_store(&self) -> bool {
        matches!(self, IrOp::Store { .. })
    }
}

/// A basic block over virtual registers.
#[derive(Debug, Clone, Hash, Default)]
pub struct Block {
    /// Operations in generator ("program") order.
    pub ops: Vec<IrOp>,
    /// Register class of each virtual register (indexed by `VirtReg.0`).
    pub classes: Vec<RegClass>,
    /// Virtual registers that are live across iterations of this block
    /// (loop-carried: induction variables, chase pointers, accumulators).
    /// They are allocated first and never spilled.
    pub carried: Vec<VirtReg>,
}

impl Block {
    /// Number of virtual registers used.
    pub fn num_vregs(&self) -> usize {
        self.classes.len()
    }

    /// The register class of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not created through the builder for this block.
    pub fn class_of(&self, v: VirtReg) -> RegClass {
        self.classes[v.0 as usize]
    }

    /// `true` if `v` is loop-carried.
    pub fn is_carried(&self, v: VirtReg) -> bool {
        self.carried.contains(&v)
    }

    /// Counts (loads, stores, alu+branch) in one execution of the block.
    pub fn op_mix(&self) -> (usize, usize, usize) {
        let loads = self.ops.iter().filter(|o| o.is_load()).count();
        let stores = self.ops.iter().filter(|o| o.is_store()).count();
        (loads, stores, self.ops.len() - loads - stores)
    }
}

/// Dynamic control structure: which blocks run, how often, in what nesting.
#[derive(Debug, Clone, Hash)]
pub enum ScriptNode {
    /// Execute `block` `times` times consecutively.
    Run {
        /// The block.
        block: BlockId,
        /// Consecutive executions.
        times: u64,
    },
    /// Execute the body `trips` times.
    Loop {
        /// Nested structure.
        body: Vec<ScriptNode>,
        /// Trip count.
        trips: u64,
    },
}

impl ScriptNode {
    /// Total dynamic block executions under this node.
    pub fn dynamic_blocks(&self) -> u64 {
        match self {
            ScriptNode::Run { times, .. } => *times,
            ScriptNode::Loop { body, trips } => {
                trips * body.iter().map(ScriptNode::dynamic_blocks).sum::<u64>()
            }
        }
    }
}

/// A complete workload program.
#[derive(Debug, Clone, Hash)]
pub struct Program {
    /// Human-readable benchmark name (e.g. `"doduc"`).
    pub name: String,
    /// Address pattern table.
    pub patterns: Vec<AddrPattern>,
    /// Basic blocks.
    pub blocks: Vec<Block>,
    /// Control structure.
    pub script: Vec<ScriptNode>,
}

/// A structural defect found by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// An op reads a virtual register that no earlier op in the block
    /// defined and that is not loop-carried.
    UseBeforeDef {
        /// Offending block.
        block: usize,
        /// Offending op index.
        op: usize,
        /// The undefined register.
        vreg: VirtReg,
    },
    /// An op references a virtual register outside the block's class table.
    UnknownVreg {
        /// Offending block.
        block: usize,
        /// The out-of-range register.
        vreg: VirtReg,
    },
    /// A memory op references a pattern index outside the pattern table.
    UnknownPattern {
        /// Offending block.
        block: usize,
        /// The out-of-range pattern.
        pattern: PatternId,
    },
    /// The script names a block index outside the block table.
    UnknownBlock {
        /// The out-of-range block.
        block: BlockId,
    },
    /// A pattern is degenerate (zero length, zero element size, or a
    /// chase with zero nodes).
    DegeneratePattern {
        /// Index in the pattern table.
        index: usize,
    },
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::UseBeforeDef { block, op, vreg } => {
                write!(
                    f,
                    "block {block}, op {op}: {vreg} used before any definition"
                )
            }
            ProgramError::UnknownVreg { block, vreg } => {
                write!(f, "block {block}: {vreg} not in the class table")
            }
            ProgramError::UnknownPattern { block, pattern } => {
                write!(f, "block {block}: pattern {} out of range", pattern.0)
            }
            ProgramError::UnknownBlock { block } => {
                write!(f, "script names block {} which does not exist", block.0)
            }
            ProgramError::DegeneratePattern { index } => {
                write!(f, "pattern {index} is degenerate")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Checks the structural invariants every generator must uphold:
    /// def-before-use for non-carried registers, in-range register /
    /// pattern / block references, and non-degenerate patterns.
    ///
    /// # Errors
    ///
    /// The first [`ProgramError`] found, if any.
    pub fn validate(&self) -> Result<(), ProgramError> {
        for (index, p) in self.patterns.iter().enumerate() {
            let degenerate = match *p {
                AddrPattern::Strided {
                    elem_bytes, length, ..
                } => elem_bytes == 0 || length == 0,
                AddrPattern::Gather {
                    elem_bytes, length, ..
                } => elem_bytes == 0 || length == 0,
                AddrPattern::Chase {
                    node_bytes,
                    nodes,
                    field_offset,
                    ..
                } => node_bytes == 0 || nodes == 0 || field_offset >= node_bytes,
                AddrPattern::Fixed { .. } => false,
            };
            if degenerate {
                return Err(ProgramError::DegeneratePattern { index });
            }
        }
        for (bi, block) in self.blocks.iter().enumerate() {
            let mut defined: Vec<bool> = vec![false; block.num_vregs()];
            for &c in &block.carried {
                match defined.get_mut(c.0 as usize) {
                    Some(slot) => *slot = true,
                    None => return Err(ProgramError::UnknownVreg { block: bi, vreg: c }),
                }
            }
            for (oi, op) in block.ops.iter().enumerate() {
                for v in op.srcs() {
                    match defined.get(v.0 as usize) {
                        Some(true) => {}
                        Some(false) => {
                            return Err(ProgramError::UseBeforeDef {
                                block: bi,
                                op: oi,
                                vreg: v,
                            })
                        }
                        None => return Err(ProgramError::UnknownVreg { block: bi, vreg: v }),
                    }
                }
                if let Some(d) = op.dst() {
                    match defined.get_mut(d.0 as usize) {
                        Some(slot) => *slot = true,
                        None => return Err(ProgramError::UnknownVreg { block: bi, vreg: d }),
                    }
                }
                let pattern = match *op {
                    IrOp::Load { pattern, .. } | IrOp::Store { pattern, .. } => Some(pattern),
                    _ => None,
                };
                if let Some(p) = pattern {
                    if p.0 as usize >= self.patterns.len() {
                        return Err(ProgramError::UnknownPattern {
                            block: bi,
                            pattern: p,
                        });
                    }
                }
            }
        }
        fn check_script(nodes: &[ScriptNode], num_blocks: usize) -> Result<(), ProgramError> {
            for n in nodes {
                match n {
                    ScriptNode::Run { block, .. } => {
                        if block.0 as usize >= num_blocks {
                            return Err(ProgramError::UnknownBlock { block: *block });
                        }
                    }
                    ScriptNode::Loop { body, .. } => check_script(body, num_blocks)?,
                }
            }
            Ok(())
        }
        check_script(&self.script, self.blocks.len())
    }

    /// Total dynamic block executions of the whole script.
    pub fn dynamic_blocks(&self) -> u64 {
        self.script.iter().map(ScriptNode::dynamic_blocks).sum()
    }

    /// Estimated dynamic instruction count (before compilation, which may
    /// add spill code): Σ executions × block length.
    pub fn estimated_instructions(&self) -> u64 {
        let mut total = 0;
        let mut per_block = vec![0u64; self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            per_block[i] = b.ops.len() as u64;
        }
        fn walk(nodes: &[ScriptNode], per_block: &[u64], total: &mut u64, mult: u64) {
            for n in nodes {
                match n {
                    ScriptNode::Run { block, times } => {
                        *total += mult * times * per_block[block.0 as usize];
                    }
                    ScriptNode::Loop { body, trips } => {
                        walk(body, per_block, total, mult * trips);
                    }
                }
            }
        }
        walk(&self.script, &per_block, &mut total, 1);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_accessors() {
        let ld = IrOp::Load {
            dst: VirtReg(0),
            pattern: PatternId(0),
            format: LoadFormat::WORD,
            addr_src: Some(VirtReg(1)),
        };
        assert_eq!(ld.dst(), Some(VirtReg(0)));
        assert_eq!(ld.srcs(), vec![VirtReg(1)]);
        assert!(ld.is_load() && !ld.is_store());

        let st = IrOp::Store {
            pattern: PatternId(0),
            data: Some(VirtReg(2)),
            addr_src: None,
        };
        assert_eq!(st.dst(), None);
        assert_eq!(st.srcs(), vec![VirtReg(2)]);
        assert!(st.is_store());

        let alu = IrOp::Alu {
            dst: VirtReg(3),
            srcs: [Some(VirtReg(0)), Some(VirtReg(2))],
        };
        assert_eq!(alu.srcs().len(), 2);

        let br = IrOp::Branch {
            srcs: [Some(VirtReg(3)), None],
        };
        assert_eq!(br.dst(), None);
        assert_eq!(br.srcs(), vec![VirtReg(3)]);
    }

    #[test]
    fn script_counting() {
        let script = [
            ScriptNode::Run {
                block: BlockId(0),
                times: 10,
            },
            ScriptNode::Loop {
                body: vec![
                    ScriptNode::Run {
                        block: BlockId(0),
                        times: 2,
                    },
                    ScriptNode::Run {
                        block: BlockId(1),
                        times: 1,
                    },
                ],
                trips: 5,
            },
        ];
        let total: u64 = script.iter().map(ScriptNode::dynamic_blocks).sum();
        assert_eq!(total, 10 + 5 * 3);
    }

    #[test]
    fn validate_accepts_well_formed_programs() {
        let mut b0 = Block::default();
        b0.classes.push(nbl_core::types::RegClass::Int);
        b0.carried.push(VirtReg(0));
        b0.ops.push(IrOp::Alu {
            dst: VirtReg(0),
            srcs: [Some(VirtReg(0)), None],
        });
        b0.ops.push(IrOp::Store {
            pattern: PatternId(0),
            data: Some(VirtReg(0)),
            addr_src: None,
        });
        let p = Program {
            name: "ok".into(),
            patterns: vec![AddrPattern::Fixed { addr: 4 }],
            blocks: vec![b0],
            script: vec![ScriptNode::Run {
                block: BlockId(0),
                times: 3,
            }],
        };
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_use_before_def() {
        let mut b = Block::default();
        b.classes.push(nbl_core::types::RegClass::Int);
        b.ops.push(IrOp::Branch {
            srcs: [Some(VirtReg(0)), None],
        });
        let p = Program {
            name: "bad".into(),
            patterns: vec![],
            blocks: vec![b],
            script: vec![],
        };
        assert!(matches!(
            p.validate(),
            Err(ProgramError::UseBeforeDef {
                vreg: VirtReg(0),
                ..
            })
        ));
    }

    #[test]
    fn validate_rejects_unknown_references() {
        // Unknown vreg in dst.
        let mut b = Block::default();
        b.ops.push(IrOp::Alu {
            dst: VirtReg(9),
            srcs: [None, None],
        });
        let p = Program {
            name: "bad".into(),
            patterns: vec![],
            blocks: vec![b],
            script: vec![],
        };
        assert!(matches!(
            p.validate(),
            Err(ProgramError::UnknownVreg { .. })
        ));

        // Unknown pattern.
        let mut b = Block::default();
        b.ops.push(IrOp::Store {
            pattern: PatternId(5),
            data: None,
            addr_src: None,
        });
        let p = Program {
            name: "bad".into(),
            patterns: vec![],
            blocks: vec![b],
            script: vec![],
        };
        assert!(matches!(
            p.validate(),
            Err(ProgramError::UnknownPattern { .. })
        ));

        // Unknown block in a nested script.
        let p = Program {
            name: "bad".into(),
            patterns: vec![],
            blocks: vec![],
            script: vec![ScriptNode::Loop {
                body: vec![ScriptNode::Run {
                    block: BlockId(3),
                    times: 1,
                }],
                trips: 2,
            }],
        };
        assert!(matches!(
            p.validate(),
            Err(ProgramError::UnknownBlock { block: BlockId(3) })
        ));
    }

    #[test]
    fn validate_rejects_degenerate_patterns() {
        for pat in [
            AddrPattern::Strided {
                base: 0,
                elem_bytes: 0,
                stride: 1,
                length: 4,
            },
            AddrPattern::Gather {
                base: 0,
                elem_bytes: 8,
                length: 0,
                seed: 1,
            },
            AddrPattern::Chase {
                base: 0,
                node_bytes: 16,
                nodes: 8,
                field_offset: 16,
                seed: 1,
            },
        ] {
            let p = Program {
                name: "bad".into(),
                patterns: vec![pat],
                blocks: vec![],
                script: vec![],
            };
            assert!(matches!(
                p.validate(),
                Err(ProgramError::DegeneratePattern { index: 0 })
            ));
        }
    }

    #[test]
    fn program_error_display_is_nonempty() {
        for e in [
            ProgramError::UseBeforeDef {
                block: 0,
                op: 1,
                vreg: VirtReg(2),
            },
            ProgramError::UnknownVreg {
                block: 0,
                vreg: VirtReg(9),
            },
            ProgramError::UnknownPattern {
                block: 0,
                pattern: PatternId(7),
            },
            ProgramError::UnknownBlock { block: BlockId(3) },
            ProgramError::DegeneratePattern { index: 4 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn estimated_instructions() {
        let mut b0 = Block::default();
        b0.ops.push(IrOp::Branch { srcs: [None, None] });
        b0.ops.push(IrOp::Branch { srcs: [None, None] });
        let mut b1 = Block::default();
        b1.ops.push(IrOp::Branch { srcs: [None, None] });
        let p = Program {
            name: "t".into(),
            patterns: vec![],
            blocks: vec![b0, b1],
            script: vec![
                ScriptNode::Run {
                    block: BlockId(0),
                    times: 3,
                },
                ScriptNode::Loop {
                    body: vec![ScriptNode::Run {
                        block: BlockId(1),
                        times: 4,
                    }],
                    trips: 2,
                },
            ],
        };
        assert_eq!(p.estimated_instructions(), 3 * 2 + 2 * 4);
        assert_eq!(p.dynamic_blocks(), 3 + 8);
    }
}
