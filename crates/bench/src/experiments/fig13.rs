//! Figure 13 (table): baseline MCPI for all 18 SPEC92 stand-ins at
//! scheduled load latency 10, under mc=0 / mc=1 / mc=2 / fc=1 / fc=2 and
//! the unrestricted cache, with ratios to the unrestricted MCPI.

use super::{program, RunScale};
use nbl_sched::compile::compile;
use nbl_sim::config::{HwConfig, SimConfig};
use nbl_sim::driver::{run_compiled, RunResult};
use nbl_sim::report;
use nbl_trace::workloads::ALL;
use std::io::Write;

/// Runs one benchmark row (shared with the integration tests).
pub fn row(name: &str, scale: RunScale) -> Vec<RunResult> {
    let p = program(name, scale);
    let compiled = compile(&p, 10).expect("workloads compile");
    HwConfig::table13_six()
        .into_iter()
        .map(|hw| run_compiled(name, &compiled, &SimConfig::baseline(hw)))
        .collect()
}

/// Prints the Fig. 13 table.
pub fn run(out: &mut dyn Write, scale: RunScale) {
    let _ = writeln!(out, "== Figure 13: baseline MCPI for 18 benchmarks (latency 10) ==");
    let _ = writeln!(
        out,
        "{:>10} {:>7} {:>5} {:>7} {:>5} {:>7} {:>5} {:>7} {:>5} {:>7} {:>5} {:>7}",
        "bench", "mc=0", "r", "mc=1", "r", "mc=2", "r", "fc=1", "r", "fc=2", "r", "inf"
    );
    for name in ALL {
        let results = row(name, scale);
        let _ = writeln!(out, "{}", report::fig13_row(name, &results));
    }
    let _ = writeln!(out);
}
