//! The tiered artifact store: one abstraction over every cached
//! derivation of a workload (DESIGN.md §16).
//!
//! The memory tier is the existing pair of exactly-once caches —
//! [`CompileCache`](crate::compile_cache::CompileCache) for compiled
//! programs and [`TapeCache`](crate::tape_cache::TapeCache) for recorded
//! tapes — with unchanged semantics. This module adds the disk tier
//! ([`DiskTier`]): a directory (by convention `results/store/`) of
//! content-addressed artifacts that survive the process, so a fresh run
//! against a populated store skips straight past recording (tape
//! artifacts) or past simulation entirely (result artifacts, under
//! `--incremental`).
//!
//! ## Content addressing
//!
//! Artifact filenames derive **only** from content fingerprints
//! ([`nbl_core::fingerprint`]) and format versions — never from clocks,
//! process ids or absolute paths — so two processes (or two machines
//! sharing the directory) agree byte-for-byte on where an artifact
//! lives:
//!
//! ```text
//! results/store/
//!   tape-v1-<workload>-l<latency>-<fp:016x>.nbt    recorded trace tape
//!   result-v1-<workload>-l<latency>-<fp:016x>.nbr  one RunResult
//!   <name>.corrupt                                 quarantined artifact
//! ```
//!
//! A tape's `<fp>` is the [`fingerprint_of`](nbl_core::fingerprint::fingerprint_of) the compiled program; a
//! result's is the fingerprint of `(program-IR fingerprint, SimConfig)`,
//! so a result can be looked up *before* compiling. Format versions are
//! embedded in the name: a version bump makes old files invisible
//! instead of misread.
//!
//! ## Corruption policy
//!
//! Every artifact carries a trailing [`checksum_bytes`](nbl_core::fingerprint::checksum_bytes) checksum. A file
//! that fails to decode — truncated, bit-flipped, version-skewed, or
//! describing a different workload than its name claims — is counted,
//! renamed to `<name>.corrupt` (quarantined, so the evidence survives
//! but the path never resolves again), and treated as a miss: the caller
//! transparently re-records or re-simulates. Disk trouble therefore
//! *degrades* the store to the memory tier; it never fails a sweep and
//! never perturbs results.

use crate::compile_cache::CompileCache;
use crate::config::SimConfig;
use crate::driver::RunResult;
use crate::tape_cache::TapeCache;
use nbl_core::fingerprint::{checksum_bytes, fingerprint_of};
use nbl_cpu::stats::ReplayAttribution;
use nbl_sched::compile::CompileError;
use nbl_trace::ir::Program;
use nbl_trace::machine::CompiledProgram;
use nbl_trace::tape::io::TapeCodecError;
use nbl_trace::tape::TraceTape;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Leading magic of a serialized [`RunResult`] artifact.
pub const RESULT_MAGIC: [u8; 4] = *b"NBLR";

/// Format version of [`RunResult`] artifacts. Bump on any change to the
/// result byte layout *or* to the `RunResult` field set; the version is
/// embedded in filenames, so old artifacts are ignored, not misparsed.
pub const RESULT_FORMAT_VERSION: u32 = 1;

/// Why a disk-tier operation failed. The store maps every variant to a
/// degraded-but-correct outcome (quarantine + miss, or skip the write),
/// so these surface in telemetry and tests rather than as run failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactError {
    /// The filesystem refused a read, write or rename (permission,
    /// space, transient). The store counts it and falls back to the
    /// memory tier.
    Io(std::io::ErrorKind),
    /// The artifact's bytes fail decoding (bad magic, version skew,
    /// truncation, checksum mismatch, …). The file is quarantined.
    Codec(TapeCodecError),
    /// The artifact decoded cleanly but describes a different
    /// `(workload, latency)` than its content address claims — a
    /// renamed or colliding file. Quarantined like corruption.
    Identity,
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io(kind) => write!(f, "artifact store i/o error: {kind}"),
            ArtifactError::Codec(e) => write!(f, "artifact damaged: {e}"),
            ArtifactError::Identity => {
                write!(f, "artifact identity does not match its content address")
            }
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<TapeCodecError> for ArtifactError {
    fn from(e: TapeCodecError) -> ArtifactError {
        ArtifactError::Codec(e)
    }
}

/// Counter snapshot from a [`DiskTier`]: how the disk tier served and
/// absorbed traffic. Surfaced in the throughput table and under
/// `"caches" → "store"` in the JSON exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Tape lookups answered from a decoded artifact.
    pub tape_hits: u64,
    /// Tape lookups that found no artifact (the caller records).
    pub tape_misses: u64,
    /// Tape artifacts written through after a recording.
    pub tape_writes: u64,
    /// Result lookups answered from a decoded artifact.
    pub result_hits: u64,
    /// Result lookups that found no artifact (the caller simulates).
    pub result_misses: u64,
    /// Result artifacts written through after a simulation.
    pub result_writes: u64,
    /// Artifacts that failed decoding or identity and were quarantined.
    pub corruptions: u64,
    /// Filesystem errors absorbed (reads and writes that gave up).
    pub io_errors: u64,
}

/// The on-disk tier: a directory of content-addressed, versioned,
/// checksummed artifacts shared across processes. All methods are
/// `&self` and thread-safe; counters are atomics.
#[derive(Debug)]
pub struct DiskTier {
    root: PathBuf,
    /// Result paths this process has already published (or found on
    /// disk): content addressing means an equal key carries equal bytes,
    /// so a repeated write is a no-op — this set answers it without the
    /// per-call `stat`. Benches that resimulate the same grid many times
    /// otherwise pay hundreds of filesystem probes per pass.
    results_written: Mutex<BTreeSet<PathBuf>>,
    tape_hits: AtomicU64,
    tape_misses: AtomicU64,
    tape_writes: AtomicU64,
    result_hits: AtomicU64,
    result_misses: AtomicU64,
    result_writes: AtomicU64,
    corruptions: AtomicU64,
    io_errors: AtomicU64,
}

/// Keeps content-addressed filenames portable: lowercase alphanumerics,
/// `_` and `-` pass through, everything else becomes `-`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            'a'..='z' | '0'..='9' | '_' | '-' => c,
            'A'..='Z' => c.to_ascii_lowercase(),
            _ => '-',
        })
        .collect()
}

impl DiskTier {
    /// A disk tier rooted at `root`. No filesystem access happens here;
    /// the directory is created on first write.
    pub fn new(root: impl Into<PathBuf>) -> DiskTier {
        DiskTier {
            root: root.into(),
            results_written: Mutex::new(BTreeSet::new()),
            tape_hits: AtomicU64::new(0),
            tape_misses: AtomicU64::new(0),
            tape_writes: AtomicU64::new(0),
            result_hits: AtomicU64::new(0),
            result_misses: AtomicU64::new(0),
            result_writes: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
        }
    }

    /// The store directory this tier reads and writes.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Content address of a tape artifact: workload + latency for human
    /// eyes, fingerprint + format version for correctness.
    pub fn tape_path(&self, name: &str, latency: u32, fingerprint: u64) -> PathBuf {
        self.root.join(format!(
            "tape-v{}-{}-l{latency}-{fingerprint:016x}.nbt",
            nbl_trace::tape::io::TAPE_FORMAT_VERSION,
            sanitize(name),
        ))
    }

    /// Content address of a result artifact.
    pub fn result_path(&self, name: &str, latency: u32, fingerprint: u64) -> PathBuf {
        self.root.join(format!(
            "result-v{RESULT_FORMAT_VERSION}-{}-l{latency}-{fingerprint:016x}.nbr",
            sanitize(name),
        ))
    }

    /// Moves a damaged artifact aside as `<name>.corrupt` so the path
    /// never resolves again but the evidence survives for diagnosis.
    fn quarantine(&self, path: &Path) {
        self.corruptions.fetch_add(1, Ordering::Relaxed);
        let mut target = path.as_os_str().to_owned();
        target.push(".corrupt");
        if std::fs::rename(path, &target).is_err() {
            // Removal is the fallback; if even that fails the next read
            // will just quarantine again.
            let _ = std::fs::remove_file(path);
        }
    }

    /// Atomically publishes `bytes` at `path` (temp file + rename, so
    /// readers never observe a partial artifact).
    fn publish(&self, path: &Path, bytes: &[u8]) -> Result<(), ArtifactError> {
        let io = |e: std::io::Error| {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
            ArtifactError::Io(e.kind())
        };
        std::fs::create_dir_all(&self.root).map_err(io)?;
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        std::fs::write(&tmp, bytes).map_err(io)?;
        std::fs::rename(&tmp, path).map_err(io)
    }

    fn read_file(&self, path: &Path) -> Result<Option<Vec<u8>>, ArtifactError> {
        match std::fs::read(path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
                Err(ArtifactError::Io(e.kind()))
            }
        }
    }

    /// Looks up the tape recorded for `(name, latency, fingerprint)`.
    ///
    /// `Ok(None)` is a plain miss. A decodable artifact must also agree
    /// with the requested identity; damage or disagreement quarantines
    /// the file and reports the typed cause.
    ///
    /// # Errors
    ///
    /// [`ArtifactError`] on filesystem trouble, damage, or identity
    /// mismatch — all of which the caller treats as "record it again".
    pub fn read_tape(
        &self,
        name: &str,
        latency: u32,
        fingerprint: u64,
    ) -> Result<Option<TraceTape>, ArtifactError> {
        let path = self.tape_path(name, latency, fingerprint);
        let Some(bytes) = self.read_file(&path)? else {
            self.tape_misses.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        };
        match TraceTape::from_bytes(&bytes) {
            Ok(tape) if tape.name() == name && tape.load_latency() == latency => {
                self.tape_hits.fetch_add(1, Ordering::Relaxed);
                Ok(Some(tape))
            }
            Ok(_) => {
                self.quarantine(&path);
                Err(ArtifactError::Identity)
            }
            Err(e) => {
                self.quarantine(&path);
                Err(ArtifactError::Codec(e))
            }
        }
    }

    /// [`DiskTier::read_tape`] degraded to an `Option`: any typed
    /// failure has been counted (and quarantined) and becomes a miss.
    pub fn load_tape(&self, name: &str, latency: u32, fingerprint: u64) -> Option<TraceTape> {
        self.read_tape(name, latency, fingerprint).ok().flatten()
    }

    /// Writes `tape` through to its content address.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] if the filesystem refuses; the failure is
    /// counted and the store simply stays cold for this key.
    pub fn write_tape(&self, tape: &TraceTape, fingerprint: u64) -> Result<(), ArtifactError> {
        let path = self.tape_path(tape.name(), tape.load_latency(), fingerprint);
        // Content-addressed: an artifact already at this path holds these
        // exact bytes (damage is quarantined away at read time), so the
        // write would be a byte-identical no-op — skip the disk traffic.
        if path.exists() {
            return Ok(());
        }
        self.publish(&path, &tape.to_bytes())?;
        self.tape_writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Looks up the stored [`RunResult`] for `(name, latency,
    /// fingerprint)` — the incremental-sweep fast path that answers a
    /// grid cell without compiling, recording or simulating.
    ///
    /// # Errors
    ///
    /// [`ArtifactError`] exactly as [`DiskTier::read_tape`]: damage is
    /// quarantined and the caller re-simulates.
    pub fn read_result(
        &self,
        name: &str,
        latency: u32,
        fingerprint: u64,
    ) -> Result<Option<RunResult>, ArtifactError> {
        let path = self.result_path(name, latency, fingerprint);
        let Some(bytes) = self.read_file(&path)? else {
            self.result_misses.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        };
        match decode_result(&bytes) {
            Ok(result) if result.benchmark == name && result.load_latency == latency => {
                self.result_hits.fetch_add(1, Ordering::Relaxed);
                Ok(Some(result))
            }
            Ok(_) => {
                self.quarantine(&path);
                Err(ArtifactError::Identity)
            }
            Err(e) => {
                self.quarantine(&path);
                Err(ArtifactError::Codec(e))
            }
        }
    }

    /// [`DiskTier::read_result`] degraded to an `Option`: typed failures
    /// are counted (and quarantined) and become misses.
    pub fn load_result(&self, name: &str, latency: u32, fingerprint: u64) -> Option<RunResult> {
        self.read_result(name, latency, fingerprint).ok().flatten()
    }

    /// Writes `result` through to its content address.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] if the filesystem refuses; counted, never
    /// fatal.
    pub fn write_result(&self, result: &RunResult, fingerprint: u64) -> Result<(), ArtifactError> {
        let path = self.result_path(&result.benchmark, result.load_latency, fingerprint);
        // Process-local exactly-once: a path this tier already published
        // (or already found on disk) never pays another `stat`.
        if let Ok(written) = self.results_written.lock() {
            if written.contains(&path) {
                return Ok(());
            }
        }
        // Same existence skip as `write_tape`: equal key ⇒ equal bytes.
        if !path.exists() {
            self.publish(&path, &encode_result(result))?;
            self.result_writes.fetch_add(1, Ordering::Relaxed);
        }
        if let Ok(mut written) = self.results_written.lock() {
            written.insert(path);
        }
        Ok(())
    }

    /// Current hit/miss/write/corruption counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            tape_hits: self.tape_hits.load(Ordering::Relaxed),
            tape_misses: self.tape_misses.load(Ordering::Relaxed),
            tape_writes: self.tape_writes.load(Ordering::Relaxed),
            result_hits: self.result_hits.load(Ordering::Relaxed),
            result_misses: self.result_misses.load(Ordering::Relaxed),
            result_writes: self.result_writes.load(Ordering::Relaxed),
            corruptions: self.corruptions.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
        }
    }
}

/// Stable fingerprint of a program's IR — half of a result artifact's
/// content address (the other half is the [`SimConfig`]).
pub fn program_fingerprint(program: &Program) -> u64 {
    fingerprint_of(program)
}

/// Stable fingerprint of a compiled program — a tape artifact's content
/// address.
pub fn compiled_fingerprint(compiled: &CompiledProgram) -> u64 {
    fingerprint_of(compiled)
}

/// Content address of one grid cell's [`RunResult`]: every input that
/// can change the result — the program's IR (which, with the config's
/// latency, determines the compiled form and the tape) and the complete
/// [`SimConfig`] — folded into one stable fingerprint.
pub fn result_fingerprint(program_fp: u64, cfg: &SimConfig) -> u64 {
    fingerprint_of(&(RESULT_FORMAT_VERSION, program_fp, cfg))
}

// ---------------------------------------------------------------------
// RunResult binary codec
// ---------------------------------------------------------------------

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    // Bit pattern, not value: round-trips NaN payloads and -0.0, so a
    // stored result stays bit-identical to the simulated one.
    push_u64(out, v.to_bits());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TapeCodecError> {
        let end = self.off.checked_add(n).ok_or(TapeCodecError::Truncated)?;
        let s = self
            .buf
            .get(self.off..end)
            .ok_or(TapeCodecError::Truncated)?;
        self.off = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, TapeCodecError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, TapeCodecError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn f64(&mut self) -> Result<f64, TapeCodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn usize_u64(&mut self) -> Result<usize, TapeCodecError> {
        usize::try_from(self.u64()?).map_err(|_| TapeCodecError::HeaderMismatch)
    }

    fn string(&mut self) -> Result<String, TapeCodecError> {
        let len = usize::try_from(self.u32()?).map_err(|_| TapeCodecError::Truncated)?;
        Ok(std::str::from_utf8(self.take(len)?)
            .map_err(|_| TapeCodecError::HeaderMismatch)?
            .to_string())
    }

    fn f64_array<const N: usize>(&mut self) -> Result<[f64; N], TapeCodecError> {
        let mut out = [0.0; N];
        for slot in &mut out {
            *slot = self.f64()?;
        }
        Ok(out)
    }

    fn u64_array<const N: usize>(&mut self) -> Result<[u64; N], TapeCodecError> {
        let mut out = [0; N];
        for slot in &mut out {
            *slot = self.u64()?;
        }
        Ok(out)
    }
}

/// Serializes one [`RunResult`] into the versioned, checksummed artifact
/// format (`NBLR` magic; field order pinned by
/// [`RESULT_FORMAT_VERSION`]). Floats serialize by bit pattern, so
/// decode → compare is exact equality with the simulated result.
pub fn encode_result(r: &RunResult) -> Vec<u8> {
    let mut out = Vec::with_capacity(512);
    out.extend_from_slice(&RESULT_MAGIC);
    push_u32(&mut out, RESULT_FORMAT_VERSION);
    push_str(&mut out, &r.benchmark);
    push_str(&mut out, &r.config);
    push_str(&mut out, &r.model);
    push_str(&mut out, &r.replacement);
    push_u32(&mut out, r.load_latency);
    push_u32(&mut out, r.miss_penalty);
    push_u64(&mut out, r.instructions);
    push_u64(&mut out, r.loads);
    push_u64(&mut out, r.stores);
    push_u64(&mut out, r.cycles);
    push_f64(&mut out, r.mcpi);
    push_u64(&mut out, r.data_dep_stalls);
    push_u64(&mut out, r.structural_stalls);
    push_u64(&mut out, r.blocking_stalls);
    push_f64(&mut out, r.structural_fraction);
    push_u64(&mut out, r.structural_stall_misses);
    push_f64(&mut out, r.load_miss_rate);
    push_f64(&mut out, r.secondary_miss_rate);
    push_f64(&mut out, r.inflight.frac_time_with_misses);
    for v in r.inflight.miss_dist {
        push_f64(&mut out, v);
    }
    for v in r.inflight.fetch_dist {
        push_f64(&mut out, v);
    }
    push_u64(&mut out, r.inflight.max_misses as u64);
    push_u64(&mut out, r.inflight.max_fetches as u64);
    push_u64(&mut out, r.static_spill_ops as u64);
    for v in r.replay.counts {
        push_u64(&mut out, v);
    }
    for v in r.replay.stall_cycles {
        push_u64(&mut out, v);
    }
    let sum = checksum_bytes(&out);
    push_u64(&mut out, sum);
    out
}

/// Decodes a [`RunResult`] artifact, verifying magic, version and the
/// trailing checksum.
///
/// # Errors
///
/// [`TapeCodecError`] (the shared artifact codec error) on any damage;
/// the store quarantines and the sweep re-simulates.
pub fn decode_result(bytes: &[u8]) -> Result<RunResult, TapeCodecError> {
    let mut r = Reader { buf: bytes, off: 0 };
    if r.take(4)? != RESULT_MAGIC {
        return Err(TapeCodecError::BadMagic);
    }
    let version = r.u32()?;
    if version != RESULT_FORMAT_VERSION {
        return Err(TapeCodecError::UnsupportedVersion(version));
    }
    let body_len = bytes
        .len()
        .checked_sub(8)
        .ok_or(TapeCodecError::Truncated)?;
    let stored = {
        let mut b = [0u8; 8];
        b.copy_from_slice(bytes.get(body_len..).ok_or(TapeCodecError::Truncated)?);
        u64::from_le_bytes(b)
    };
    let body = bytes.get(..body_len).ok_or(TapeCodecError::Truncated)?;
    if checksum_bytes(body) != stored {
        return Err(TapeCodecError::ChecksumMismatch);
    }
    r.buf = body;
    let result = RunResult {
        benchmark: r.string()?,
        config: r.string()?,
        model: r.string()?,
        replacement: r.string()?,
        load_latency: r.u32()?,
        miss_penalty: r.u32()?,
        instructions: r.u64()?,
        loads: r.u64()?,
        stores: r.u64()?,
        cycles: r.u64()?,
        mcpi: r.f64()?,
        data_dep_stalls: r.u64()?,
        structural_stalls: r.u64()?,
        blocking_stalls: r.u64()?,
        structural_fraction: r.f64()?,
        structural_stall_misses: r.u64()?,
        load_miss_rate: r.f64()?,
        secondary_miss_rate: r.f64()?,
        inflight: crate::driver::InFlightSummary {
            frac_time_with_misses: r.f64()?,
            miss_dist: r.f64_array()?,
            fetch_dist: r.f64_array()?,
            max_misses: r.usize_u64()?,
            max_fetches: r.usize_u64()?,
        },
        static_spill_ops: r.usize_u64()?,
        replay: ReplayAttribution {
            counts: r.u64_array()?,
            stall_cycles: r.u64_array()?,
        },
    };
    if r.off != body.len() {
        return Err(TapeCodecError::TrailingBytes);
    }
    Ok(result)
}

// ---------------------------------------------------------------------
// Store settings (process-wide configuration)
// ---------------------------------------------------------------------

/// How a process wires its [`ArtifactStore`]: where (and whether) the
/// disk tier lives, and whether sweeps run incrementally (answering
/// unchanged grid cells from stored results without simulating).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreSettings {
    /// Disk-tier directory; `None` keeps the store memory-only.
    pub dir: Option<PathBuf>,
    /// Incremental sweeps: serve grid cells from stored [`RunResult`]s
    /// when every input fingerprint is unchanged.
    pub incremental: bool,
}

impl StoreSettings {
    /// Settings from the environment: `NBL_STORE_DIR` names the disk
    /// tier, `NBL_INCREMENTAL=1` turns on incremental sweeps.
    pub fn from_env() -> StoreSettings {
        StoreSettings {
            dir: std::env::var_os("NBL_STORE_DIR")
                .filter(|v| !v.is_empty())
                .map(PathBuf::from),
            incremental: std::env::var("NBL_INCREMENTAL").is_ok_and(|v| v.trim() == "1"),
        }
    }
}

static SETTINGS: OnceLock<StoreSettings> = OnceLock::new();

/// Pins the process-wide store settings (the CLI calls this once from
/// `--store`/`--incremental` before any sweep). Returns `false` if the
/// settings were already pinned (first caller wins — same discipline as
/// the bench options).
pub fn configure_store(settings: StoreSettings) -> bool {
    SETTINGS.set(settings).is_ok()
}

/// The process-wide store settings: whatever [`configure_store`] pinned,
/// else [`StoreSettings::from_env`].
pub fn store_settings() -> StoreSettings {
    SETTINGS
        .get()
        .cloned()
        .unwrap_or_else(StoreSettings::from_env)
}

// ---------------------------------------------------------------------
// The tiered store facade
// ---------------------------------------------------------------------

/// The tiered artifact store the sweep engine runs on: the two
/// exactly-once memory caches, optionally backed by a shared
/// [`DiskTier`], plus the incremental-mode switch.
///
/// Tier order on a tape request: memory (`OnceLock` slot) → disk
/// (decode + verify) → record. Recordings write through to disk; the
/// memory tier's semantics (sharing, byte budget, eviction) are
/// unchanged from the pre-store caches.
#[derive(Debug)]
pub struct ArtifactStore {
    compile: CompileCache,
    tapes: TapeCache,
    disk: Option<Arc<DiskTier>>,
    incremental: bool,
}

impl Default for ArtifactStore {
    fn default() -> Self {
        ArtifactStore::in_memory()
    }
}

impl ArtifactStore {
    /// A memory-only store: exactly the pre-disk cache behavior.
    pub fn in_memory() -> ArtifactStore {
        ArtifactStore {
            compile: CompileCache::new(),
            tapes: TapeCache::new(),
            disk: None,
            incremental: false,
        }
    }

    /// A store with a disk tier rooted at `dir`.
    pub fn with_disk(dir: impl Into<PathBuf>, incremental: bool) -> ArtifactStore {
        let disk = Arc::new(DiskTier::new(dir));
        ArtifactStore {
            compile: CompileCache::new(),
            tapes: TapeCache::with_disk(Arc::clone(&disk)),
            disk: Some(disk),
            incremental,
        }
    }

    /// A store wired from [`store_settings`] (CLI flags or environment).
    pub fn from_settings() -> ArtifactStore {
        let settings = store_settings();
        match settings.dir {
            Some(dir) => ArtifactStore::with_disk(dir, settings.incremental),
            None => ArtifactStore::in_memory(),
        }
    }

    /// The memory-tier compile cache.
    pub fn compile_cache(&self) -> &CompileCache {
        &self.compile
    }

    /// The memory-tier tape cache (disk-backed when the store has a
    /// disk tier).
    pub fn tape_cache(&self) -> &TapeCache {
        &self.tapes
    }

    /// The disk tier, if this store has one.
    pub fn disk(&self) -> Option<&Arc<DiskTier>> {
        self.disk.as_ref()
    }

    /// `true` when sweeps should answer unchanged grid cells from
    /// stored results without simulating.
    pub fn incremental(&self) -> bool {
        self.incremental && self.disk.is_some()
    }

    /// Compiles through the memory tier (exactly-once per key).
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] like
    /// [`CompileCache::get_or_compile`].
    pub fn get_or_compile(
        &self,
        program: &Program,
        latency: u32,
    ) -> Result<Arc<CompiledProgram>, CompileError> {
        self.compile.get_or_compile(program, latency)
    }

    /// Fetches the tape for `compiled` through all tiers (memory →
    /// disk → record), writing any fresh recording through to disk.
    pub fn get_or_record(&self, compiled: &CompiledProgram) -> Arc<TraceTape> {
        self.tapes.get_or_record(compiled)
    }

    /// The stored result for one grid cell, if the disk tier holds one
    /// under the exact input fingerprint (incremental mode's fast path).
    pub fn load_result(&self, name: &str, latency: u32, fingerprint: u64) -> Option<RunResult> {
        self.disk
            .as_ref()
            .and_then(|d| d.load_result(name, latency, fingerprint))
    }

    /// Writes one grid cell's result through to the disk tier (no-op
    /// for a memory-only store).
    pub fn store_result(&self, result: &RunResult, fingerprint: u64) {
        if let Some(d) = &self.disk {
            let _ = d.write_result(result, fingerprint);
        }
    }

    /// Disk-tier counters (zeroes for a memory-only store).
    pub fn disk_stats(&self) -> StoreStats {
        self.disk.as_ref().map(|d| d.stats()).unwrap_or_default()
    }
}
